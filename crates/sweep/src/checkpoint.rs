//! Checkpoint/resume for long parameter sweeps.
//!
//! A repro binary wraps each natural unit of work (one α, one seed, one
//! figure panel) in [`SweepCheckpoint::rows`] or
//! [`SweepCheckpoint::report_with`]. The first time a unit completes,
//! its output rows are appended as one JSON line to
//! `results/<id>.checkpoint.json` and synced; on a restarted run the
//! stored rows are replayed instead of recomputed. A SIGKILL therefore
//! costs at most the one unit that was in flight — not the sweep.
//!
//! Properties:
//!
//! * **Tolerant load.** A line truncated by a kill mid-append fails to
//!   parse and is skipped; that unit simply recomputes.
//! * **Deterministic replay.** Units are keyed by a caller-chosen string
//!   and replayed in the caller's program order, so an interrupted +
//!   resumed run assembles the *byte-identical* final report of an
//!   uninterrupted one (the binaries are seeded and deterministic).
//! * **Self-cleaning.** [`SweepCheckpoint::finish`] deletes the file at
//!   the end of every completed run — pass or fail — so a stale
//!   checkpoint can never leak rows from an older code version into a
//!   fresh sweep.

use crate::{results_dir, Report, Row};
use gncg_json::{object, FromJson, ToJson, Value};
use std::collections::HashMap;
use std::io::Write as _;
use std::ops::Range;
use std::path::PathBuf;

/// Append-only checkpoint of completed sweep units for one report id.
pub struct SweepCheckpoint {
    path: PathBuf,
    done_rows: HashMap<String, Vec<Row>>,
    done_reports: HashMap<String, Report>,
    /// Units replayed from disk this run (for the resume banner).
    resumed: usize,
    file: Option<std::fs::File>,
}

impl SweepCheckpoint {
    /// Open (or start) the checkpoint for report `id`, loading every
    /// completed unit recorded by a previous interrupted run.
    pub fn open(id: &str) -> Self {
        Self::open_at(results_dir().join(format!("{id}.checkpoint.json")))
    }

    /// [`SweepCheckpoint::open`] with an explicit file path (tests use
    /// this to avoid the process-global results dir).
    pub fn open_at(path: PathBuf) -> Self {
        let mut done_rows = HashMap::new();
        let mut done_reports = HashMap::new();
        if let Ok(text) = std::fs::read_to_string(&path) {
            for line in text.lines() {
                if line.trim().is_empty() {
                    continue;
                }
                // a line truncated by SIGKILL mid-append fails to parse:
                // skip it, the unit recomputes
                let Ok(v) = gncg_json::parse(line) else {
                    continue;
                };
                let Some(key) = v.get("key").and_then(|k| k.as_str()) else {
                    continue;
                };
                if let Some(rows) = v.get("rows") {
                    if let Ok(rows) = Vec::<Row>::from_json(rows) {
                        done_rows.entry(key.to_string()).or_insert(rows);
                    }
                } else if let Some(report) = v.get("report") {
                    if let Ok(report) = Report::from_json(report) {
                        done_reports.entry(key.to_string()).or_insert(report);
                    }
                }
            }
        }
        Self {
            path,
            done_rows,
            done_reports,
            resumed: 0,
            file: None,
        }
    }

    /// How many units were replayed from disk instead of recomputed.
    pub fn resumed_units(&self) -> usize {
        self.resumed
    }

    /// Run one unit of work that appends rows to `report` — or replay
    /// its stored rows if a previous run already completed it.
    ///
    /// Returns the range of `report.rows` the unit produced, so callers
    /// can derive follow-up values (e.g. a fitted slope) from the rows
    /// regardless of whether they were computed or replayed.
    pub fn rows(
        &mut self,
        report: &mut Report,
        key: &str,
        unit: impl FnOnce(&mut Report),
    ) -> Range<usize> {
        let start = report.rows.len();
        if let Some(saved) = self.done_rows.get(key) {
            report.rows.extend(saved.iter().cloned());
            self.resumed += 1;
            return start..report.rows.len();
        }
        unit(report);
        let end = report.rows.len();
        self.append_line(object(vec![
            ("key", key.to_json()),
            ("rows", report.rows[start..end].to_json()),
        ]));
        start..end
    }

    /// Run a unit of work producing a whole [`Report`] — or replay the
    /// stored report if a previous run already completed it. Used by
    /// binaries that emit several independent reports (Table 1 sections,
    /// figure panels).
    pub fn report_with(&mut self, key: &str, unit: impl FnOnce() -> Report) -> Report {
        if let Some(saved) = self.done_reports.get(key) {
            self.resumed += 1;
            return saved.clone();
        }
        let report = unit();
        self.append_line(object(vec![
            ("key", key.to_json()),
            ("report", report.to_json()),
        ]));
        report
    }

    /// Delete the checkpoint. Call at the end of every *completed* run
    /// (pass or fail): the final report has been saved atomically, so
    /// the partial-progress record must not outlive it.
    pub fn finish(self) {
        let _ = std::fs::remove_file(&self.path);
    }

    fn append_line(&mut self, value: Value) {
        if self.file.is_none() {
            if let Some(dir) = self.path.parent() {
                let _ = std::fs::create_dir_all(dir);
            }
            self.file = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&self.path)
                .ok();
        }
        // checkpointing is best-effort: an unwritable results dir must
        // not break the sweep itself
        if let Some(f) = self.file.as_mut() {
            let mut line = gncg_json::to_string(&value);
            line.push('\n');
            let _ = f.write_all(line.as_bytes());
            let _ = f.sync_data();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct TempResultsDir(PathBuf);

    impl TempResultsDir {
        fn new(tag: &str) -> Self {
            let dir = std::env::temp_dir().join(format!("gncg_ckpt_{tag}_{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            std::fs::create_dir_all(&dir).unwrap();
            Self(dir)
        }
        fn path(&self, id: &str) -> PathBuf {
            self.0.join(format!("{id}.checkpoint.json"))
        }
    }

    impl Drop for TempResultsDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn open_in(dir: &TempResultsDir, id: &str) -> SweepCheckpoint {
        SweepCheckpoint::open_at(dir.path(id))
    }

    #[test]
    fn resume_replays_completed_units_without_recompute() {
        let dir = TempResultsDir::new("resume");

        // first run: two units complete
        let mut c1 = open_in(&dir, "ck1");
        let mut r1 = Report::new("ck1", "claim");
        c1.rows(&mut r1, "alpha=1", |r| {
            r.push("alpha=1".into(), 1.0, 1.5, true, "")
        });
        c1.rows(&mut r1, "alpha=2", |r| {
            r.push("alpha=2".into(), 2.0, 2.5, true, "n")
        });
        assert_eq!(c1.resumed_units(), 0);
        assert!(dir.path("ck1").exists());

        // "crashed" here: c1 never finished. second run resumes
        let mut c2 = open_in(&dir, "ck1");
        let mut r2 = Report::new("ck1", "claim");
        let range = c2.rows(&mut r2, "alpha=1", |_| {
            panic!("unit must not recompute on resume")
        });
        assert_eq!(range, 0..1);
        c2.rows(&mut r2, "alpha=2", |_| panic!("unit must not recompute"));
        // a third, new unit still runs
        c2.rows(&mut r2, "alpha=3", |r| {
            r.push("alpha=3".into(), 3.0, 3.5, true, "")
        });
        assert_eq!(c2.resumed_units(), 2);
        assert_eq!(r2.rows.len(), 3);
        assert_eq!(r1.rows, r2.rows[..2].to_vec());

        // finish deletes the file
        c2.finish();
        assert!(!dir.path("ck1").exists());
    }

    #[test]
    fn truncated_last_line_is_skipped() {
        let dir = TempResultsDir::new("trunc");
        let mut c1 = open_in(&dir, "ck2");
        let mut r = Report::new("ck2", "claim");
        c1.rows(&mut r, "u1", |r| r.push("u1".into(), 1.0, 1.0, true, ""));
        // simulate a SIGKILL mid-append: chop the file mid-line
        let text = std::fs::read_to_string(dir.path("ck2")).unwrap();
        std::fs::write(dir.path("ck2"), &text.as_bytes()[..text.len() / 2]).unwrap();

        let mut c2 = open_in(&dir, "ck2");
        let mut r2 = Report::new("ck2", "claim");
        let mut recomputed = false;
        c2.rows(&mut r2, "u1", |r| {
            recomputed = true;
            r.push("u1".into(), 1.0, 1.0, true, "");
        });
        assert!(recomputed, "corrupt unit must recompute");
        assert_eq!(r2.rows, r.rows);
    }

    #[test]
    fn whole_report_units_roundtrip() {
        let dir = TempResultsDir::new("whole");
        let mut c1 = open_in(&dir, "ck3");
        let built = c1.report_with("section_a", || {
            let mut r = Report::new("section_a", "sub-claim");
            r.push_unreferenced("x=1".into(), 4.25, true, "");
            r.push_degenerate("x=2".into(), false, "no data");
            r
        });
        let mut c2 = open_in(&dir, "ck3");
        let replayed = c2.report_with("section_a", || panic!("must not recompute"));
        assert_eq!(replayed, built);
        assert_eq!(c2.resumed_units(), 1);
    }
}
