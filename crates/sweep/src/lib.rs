//! gncg-sweep: the declarative sweep language and its engine.
//!
//! The paper's results are a grid of sweeps — generators × α ranges ×
//! n × seeds → β/γ figures. This crate makes that grid a first-class,
//! *declarative* object:
//!
//! * [`spec`] — the `SweepSpec` JSON grammar, a strict parser, a
//!   canonicalizer (field order, float formatting, range and
//!   seed-stream expansion all normalized), and the content-address
//!   key builders used by the result cache;
//! * [`engine`] — the compiler from a spec to executed units, routed
//!   through the content-addressed `ResultCache` and (optionally) a
//!   `gncg_service::Session`, honoring checkpoint/resume and budgets;
//! * [`checkpoint`] / [`harness`] — the checkpoint/resume and
//!   service-job harness infrastructure the repro binaries run on
//!   (moved here from `gncg-bench`, which re-exports them unchanged);
//! * the report types ([`Report`], [`Row`], …) every tier shares.
//!
//! The reproducibility contract: running the same spec — cold cache,
//! warm cache, or no cache at all — produces byte-identical
//! `results/<id>.json` files. The `sweep_oracle` integration suite
//! certifies that for every committed `specs/*.sweep.json`.

pub mod checkpoint;
pub mod engine;
pub mod harness;
pub mod spec;

mod report;

pub use report::{log_log_slope, results_dir, FitError, NonFiniteValue, Report, Row};
