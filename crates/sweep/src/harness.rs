//! Thin-client harness: repro sweeps as [`gncg_service::Session`] jobs.
//!
//! Every repro binary used to own the whole process: open a
//! [`SweepCheckpoint`], run units, save, finish. They are now thin
//! clients of the job service — the sweep body runs as a single `Sweep`
//! job whose [`JobCtx`] budget comes from the session (and hence from
//! `GNCG_BUDGET_MS`). That buys each binary, for free:
//!
//! * **time-sliced sweeps** — with `GNCG_BUDGET_MS` set, the sweep runs
//!   until the budget trips, checkpoints, and exits with
//!   [`INTERRUPTED_EXIT`]; re-running resumes from the checkpoint and
//!   assembles the byte-identical report of an uninterrupted run;
//! * **panic isolation** — a panicking sweep resolves its handle to
//!   [`gncg_service::JobError::Panicked`] instead of poisoning the
//!   process abort path.
//!
//! [`SweepRun`] bundles the job context with the checkpoint: units go
//! through [`SweepRun::unit`]/[`SweepRun::section`], which replay
//! completed work and *skip* (returning `None`) once the budget is
//! exhausted — completed units stay checkpointed, in-flight ones are
//! never half-written.

use crate::checkpoint::SweepCheckpoint;
use crate::Report;
use gncg_service::{JobCtx, JobOptions, Session};
use std::ops::Range;

/// Exit code of a sweep interrupted by its budget (checkpoint kept;
/// re-run to resume). `EX_TEMPFAIL` from `sysexits.h`. Defined once in
/// `gncg-config` so every tier — local sweeps, the `gncg` CLI, and
/// remote `ServeClient` sessions — exits identically on interruption.
pub use gncg_config::INTERRUPTED_EXIT;

/// A sweep body's view of its job: the service context plus the
/// checkpoint for this report id.
pub struct SweepRun<'c> {
    ctx: &'c JobCtx,
    ckpt: SweepCheckpoint,
}

impl SweepRun<'_> {
    /// Has the job's budget been exhausted (deadline, handle cancel, or
    /// session shutdown)? Completed units are already checkpointed;
    /// the body should wind down.
    pub fn cancelled(&self) -> bool {
        self.ctx.cancelled()
    }

    /// Units replayed from a previous interrupted run's checkpoint.
    pub fn resumed_units(&self) -> usize {
        self.ckpt.resumed_units()
    }

    /// Run (or replay) one checkpointed unit appending rows to
    /// `report`; see [`SweepCheckpoint::rows`]. Returns `None` without
    /// running once the budget is exhausted.
    pub fn unit(
        &mut self,
        report: &mut Report,
        key: &str,
        f: impl FnOnce(&mut Report),
    ) -> Option<Range<usize>> {
        if self.ctx.cancelled() {
            return None;
        }
        Some(self.ckpt.rows(report, key, f))
    }

    /// Run (or replay) one checkpointed unit producing a whole
    /// [`Report`]; see [`SweepCheckpoint::report_with`]. Returns `None`
    /// without running once the budget is exhausted.
    pub fn section(&mut self, key: &str, f: impl FnOnce() -> Report) -> Option<Report> {
        if self.ctx.cancelled() {
            return None;
        }
        Some(self.ckpt.report_with(key, f))
    }
}

/// Run a sweep body as a service job against the checkpoint for `id`.
///
/// Returns the body's value and whether the sweep was interrupted. On a
/// completed run the checkpoint is deleted (*after* the body returned,
/// so the body must save its reports first); on an interrupted run it
/// is kept for resume. A panicking body exits the process with code 1.
pub fn run_sweep<T, F>(id: &str, body: F) -> (T, bool)
where
    T: Send + 'static,
    F: FnOnce(&mut SweepRun) -> T + Send + 'static,
{
    let session = Session::new();
    let id_owned = id.to_string();
    let handle = session
        .submit_sweep(JobOptions::default(), move |ctx| {
            let mut run = SweepRun {
                ctx,
                ckpt: SweepCheckpoint::open(&id_owned),
            };
            if run.resumed_units() > 0 {
                eprintln!(
                    "sweep '{id_owned}': resuming {} checkpointed unit(s)",
                    run.resumed_units()
                );
            }
            let out = body(&mut run);
            let interrupted = run.cancelled();
            if interrupted {
                eprintln!("sweep '{id_owned}' interrupted by its budget; checkpoint kept — re-run to resume");
            } else {
                run.ckpt.finish();
            }
            (out, interrupted)
        })
        .unwrap_or_else(|e| {
            eprintln!("sweep '{id}' rejected by the service: {e}");
            std::process::exit(2);
        });
    match handle.wait() {
        Ok(out) => out,
        Err(e) => {
            eprintln!("sweep '{id}' failed: {e}");
            std::process::exit(1);
        }
    }
}

/// Whole-main harness for single-report repro binaries: runs `body` as
/// a service job, then prints and saves the report and finishes the
/// checkpoint. Exits with [`INTERRUPTED_EXIT`] when the budget tripped
/// mid-sweep. Returns the completed report so `main` can turn
/// `!all_ok()` into its exit status.
pub fn run_repro<F>(id: &str, claim: &str, body: F) -> Report
where
    F: FnOnce(&mut SweepRun, &mut Report) + Send + 'static,
{
    let id_owned = id.to_string();
    let claim_owned = claim.to_string();
    let (report, interrupted) = run_sweep(id, move |run| {
        let mut report = Report::new(&id_owned, &claim_owned);
        body(run, &mut report);
        if !run.cancelled() {
            report.print();
            let _ = report.save();
        }
        report
    });
    if interrupted {
        std::process::exit(INTERRUPTED_EXIT);
    }
    report
}

/// Whole-main harness for multi-report (sectioned) repro binaries: the
/// body prints/saves each section itself and returns its aggregate
/// `all_ok`. Exits with [`INTERRUPTED_EXIT`] when interrupted.
pub fn run_sections<F>(id: &str, body: F) -> bool
where
    F: FnOnce(&mut SweepRun) -> bool + Send + 'static,
{
    let (all_ok, interrupted) = run_sweep(id, body);
    if interrupted {
        std::process::exit(INTERRUPTED_EXIT);
    }
    all_ok
}
