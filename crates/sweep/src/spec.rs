//! The declarative sweep language: `SweepSpec` parsing, canonical form,
//! and the content-address key builders.
//!
//! # Grammar (version 1)
//!
//! ```text
//! spec      := {"sweep": ID, "claim": TEXT, "version": 1,
//!               "instances": {"generator": GEN, "n": USIZES, "seeds": SEEDS},
//!               "network": {"method": METHOD | [METHOD...]},
//!               "alphas": FLOATS,
//!               "job": {"kind": "certify", "exact"?: BOOL,
//!                       "model"?: "sum" | "maxdist",
//!                       "budget_ms"?: MS | null}}
//! GEN       := "uniform" | "grid" | "cluster" | "chain"
//! METHOD    := "combined" | "alg1" | "mst" | "complete" | "star"
//! USIZES    := [INT...] | {"start": INT, "stop": INT, "step"?: INT}
//! FLOATS    := [NUM...] | {"start": NUM, "stop": NUM, "step": NUM}
//! SEEDS     := [INT...] | {"base": INT, "count": INT}
//! ```
//!
//! The parser is **strict**: unknown fields anywhere, a wrong
//! `version`, an empty axis, an unknown generator/method, or a
//! non-positive range step are all errors — a typo'd knob must never
//! silently run a different sweep than the author wrote.
//!
//! # Canonical form and hash soundness
//!
//! [`SweepSpec::canonical_value`] re-emits the spec fully explicit:
//! every optional field present, every range and seed stream expanded
//! to its explicit list, `method` always an array, keys sorted (via
//! `gncg_json::canon`), floats printed by the one shared number writer.
//! Two specs that differ only in key order, float spelling, range
//! syntax, or elided defaults therefore canonicalize to identical bytes
//! — and any *semantic* difference changes the bytes, because every
//! semantic field is printed. [`SweepSpec::content_key`] hashes those
//! bytes; the per-unit cache keys ([`network_key`], [`certify_key`])
//! apply the same discipline to one unit's instance + options.
//!
//! Keys may over-discriminate (e.g. α is always in the network-step key
//! even for α-independent methods like `mst`) — that costs a recompute,
//! never a false hit.

use gncg_config::ModelKind;
use gncg_json::{canon, object, Value};

/// The expansion ceiling: seeds (and any explicit integer) must stay in
/// the f64-exact range so the canonical JSON round-trips them
/// losslessly through the `f64`-backed [`Value::Number`].
const SEED_MASK: u64 = (1 << 53) - 1;

/// A parse/validation error with a path-qualified message.
#[derive(Debug, Clone, PartialEq)]
pub struct SpecError(pub String);

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sweep spec: {}", self.0)
    }
}

impl std::error::Error for SpecError {}

fn err<T>(msg: impl Into<String>) -> Result<T, SpecError> {
    Err(SpecError(msg.into()))
}

/// A parsed, validated sweep: every axis already expanded to explicit
/// values in deterministic order.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpec {
    /// Sweep/report id (`"sweep"` field) — also the results filename.
    pub id: String,
    /// The claim line of the generated report.
    pub claim: String,
    /// Point generator: `uniform` | `grid` | `cluster` | `chain`.
    pub generator: String,
    /// Instance sizes.
    pub ns: Vec<usize>,
    /// Explicit seed list (a `{base, count}` stream is expanded at
    /// parse time with [`seed_stream`]).
    pub seeds: Vec<u64>,
    /// Network-construction methods.
    pub methods: Vec<String>,
    /// Edge-price factors.
    pub alphas: Vec<f64>,
    /// Exact certification (exponential parts) vs. bounds-only.
    pub exact: bool,
    /// Cost model to certify under.
    pub model: ModelKind,
    /// Per-unit wall budget; `None` (the committed-spec norm) keeps the
    /// units deterministic and cache-eligible.
    pub budget_ms: Option<u64>,
}

/// The deterministic per-job seed stream: seed `i` is a splitmix64-style
/// mix of `base + i·γ` (γ the 64-bit golden ratio), masked into the
/// f64-exact integer range (see the module docs). Same base + count ⇒
/// same stream, on every machine, forever — the canonical form expands
/// `{base, count}` through this exact function, so the stream *is* part
/// of the content address.
pub fn seed_stream(base: u64, count: usize) -> Vec<u64> {
    (0..count as u64)
        .map(|i| {
            let mut z = base.wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            (z ^ (z >> 31)) & SEED_MASK
        })
        .collect()
}

const GENERATORS: [&str; 4] = ["uniform", "grid", "cluster", "chain"];
const METHODS: [&str; 5] = ["combined", "alg1", "mst", "complete", "star"];

/// Reject any key of `value` not in `allowed` (strict-parser rule).
fn check_keys(value: &Value, path: &str, allowed: &[&str]) -> Result<(), SpecError> {
    let Value::Object(entries) = value else {
        return err(format!("`{path}` must be an object"));
    };
    for (k, _) in entries {
        if !allowed.contains(&k.as_str()) {
            return err(format!(
                "unknown field `{k}` in `{path}` (allowed: {})",
                allowed.join(", ")
            ));
        }
    }
    Ok(())
}

fn get<'v>(value: &'v Value, path: &str, key: &str) -> Result<&'v Value, SpecError> {
    value
        .get(key)
        .ok_or_else(|| SpecError(format!("`{path}` missing required field `{key}`")))
}

fn as_str(value: &Value, path: &str) -> Result<String, SpecError> {
    match value.as_str() {
        Some(s) => Ok(s.to_string()),
        None => err(format!("`{path}` must be a string")),
    }
}

fn as_exact_int(value: &Value, path: &str) -> Result<u64, SpecError> {
    let Some(x) = value.as_f64() else {
        return err(format!("`{path}` must be a number"));
    };
    if x.fract() != 0.0 || !(0.0..=SEED_MASK as f64).contains(&x) {
        return err(format!(
            "`{path}` must be a non-negative integer ≤ 2^53-1, got {x}"
        ));
    }
    Ok(x as u64)
}

/// `USIZES`: explicit list or inclusive integer range.
fn parse_usizes(value: &Value, path: &str) -> Result<Vec<usize>, SpecError> {
    let values = match value {
        Value::Array(items) => items
            .iter()
            .enumerate()
            .map(|(i, v)| as_exact_int(v, &format!("{path}[{i}]")).map(|x| x as usize))
            .collect::<Result<Vec<_>, _>>()?,
        Value::Object(_) => {
            check_keys(value, path, &["start", "stop", "step"])?;
            let start = as_exact_int(get(value, path, "start")?, &format!("{path}.start"))?;
            let stop = as_exact_int(get(value, path, "stop")?, &format!("{path}.stop"))?;
            let step = match value.get("step") {
                Some(s) => as_exact_int(s, &format!("{path}.step"))?,
                None => 1,
            };
            if step == 0 {
                return err(format!("`{path}.step` must be ≥ 1"));
            }
            (start..=stop)
                .step_by(step as usize)
                .map(|x| x as usize)
                .collect()
        }
        _ => return err(format!("`{path}` must be a list or a range object")),
    };
    if values.is_empty() {
        return err(format!("`{path}` expands to no values"));
    }
    Ok(values)
}

/// `FLOATS`: explicit list or inclusive float range. Range values are
/// computed as `start + i·step` (no accumulation drift) and the stop is
/// inclusive up to a 1e-9 tolerance, so `{1, 2, 0.5}` is `[1, 1.5, 2]`
/// on every platform.
fn parse_floats(value: &Value, path: &str) -> Result<Vec<f64>, SpecError> {
    let finite = |v: &Value, p: &str| -> Result<f64, SpecError> {
        match v.as_f64() {
            Some(x) if x.is_finite() => Ok(x),
            _ => err(format!("`{p}` must be a finite number")),
        }
    };
    let values = match value {
        Value::Array(items) => items
            .iter()
            .enumerate()
            .map(|(i, v)| finite(v, &format!("{path}[{i}]")))
            .collect::<Result<Vec<_>, _>>()?,
        Value::Object(_) => {
            check_keys(value, path, &["start", "stop", "step"])?;
            let start = finite(get(value, path, "start")?, &format!("{path}.start"))?;
            let stop = finite(get(value, path, "stop")?, &format!("{path}.stop"))?;
            let step = finite(get(value, path, "step")?, &format!("{path}.step"))?;
            if step <= 0.0 {
                return err(format!("`{path}.step` must be > 0"));
            }
            let mut out = Vec::new();
            let mut i = 0u32;
            loop {
                let x = start + f64::from(i) * step;
                if x > stop + 1e-9 {
                    break;
                }
                out.push(x);
                i += 1;
            }
            out
        }
        _ => return err(format!("`{path}` must be a list or a range object")),
    };
    if values.is_empty() {
        return err(format!("`{path}` expands to no values"));
    }
    Ok(values)
}

/// `SEEDS`: explicit list or `{base, count}` stream.
fn parse_seeds(value: &Value, path: &str) -> Result<Vec<u64>, SpecError> {
    let values = match value {
        Value::Array(items) => items
            .iter()
            .enumerate()
            .map(|(i, v)| as_exact_int(v, &format!("{path}[{i}]")))
            .collect::<Result<Vec<_>, _>>()?,
        Value::Object(_) => {
            check_keys(value, path, &["base", "count"])?;
            let base = as_exact_int(get(value, path, "base")?, &format!("{path}.base"))?;
            let count = as_exact_int(get(value, path, "count")?, &format!("{path}.count"))?;
            seed_stream(base, count as usize)
        }
        _ => return err(format!("`{path}` must be a list or {{base, count}}")),
    };
    if values.is_empty() {
        return err(format!("`{path}` expands to no values"));
    }
    Ok(values)
}

impl SweepSpec {
    /// Strict-parse a spec from JSON text.
    pub fn parse(text: &str) -> Result<Self, SpecError> {
        let value = gncg_json::parse(text).map_err(|e| SpecError(format!("invalid JSON: {e}")))?;
        Self::from_value(&value)
    }

    /// Strict-parse a spec from an already-parsed [`Value`].
    pub fn from_value(value: &Value) -> Result<Self, SpecError> {
        check_keys(
            value,
            "spec",
            &[
                "sweep",
                "claim",
                "version",
                "instances",
                "network",
                "alphas",
                "job",
            ],
        )?;
        let version = as_exact_int(get(value, "spec", "version")?, "version")?;
        if version != 1 {
            return err(format!(
                "unsupported `version` {version} (this build speaks 1)"
            ));
        }
        let id = as_str(get(value, "spec", "sweep")?, "sweep")?;
        if id.is_empty() || !id.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
            return err(format!(
                "`sweep` id `{id}` must be non-empty [A-Za-z0-9_] (it names the results file)"
            ));
        }
        let claim = as_str(get(value, "spec", "claim")?, "claim")?;

        let instances = get(value, "spec", "instances")?;
        check_keys(instances, "instances", &["generator", "n", "seeds"])?;
        let generator = as_str(
            get(instances, "instances", "generator")?,
            "instances.generator",
        )?;
        if !GENERATORS.contains(&generator.as_str()) {
            return err(format!(
                "unknown generator `{generator}` (allowed: {})",
                GENERATORS.join(", ")
            ));
        }
        let ns = parse_usizes(get(instances, "instances", "n")?, "instances.n")?;
        if let Some(&bad) = ns.iter().find(|&&n| n < 2) {
            return err(format!("instances.n contains {bad}; every n must be ≥ 2"));
        }
        let seeds = parse_seeds(get(instances, "instances", "seeds")?, "instances.seeds")?;

        let network = get(value, "spec", "network")?;
        check_keys(network, "network", &["method"])?;
        let method_field = get(network, "network", "method")?;
        let methods = match method_field {
            Value::String(s) => vec![s.clone()],
            Value::Array(items) => items
                .iter()
                .enumerate()
                .map(|(i, v)| as_str(v, &format!("network.method[{i}]")))
                .collect::<Result<Vec<_>, _>>()?,
            _ => return err("`network.method` must be a string or list of strings"),
        };
        if methods.is_empty() {
            return err("`network.method` expands to no values");
        }
        for m in &methods {
            if !METHODS.contains(&m.as_str()) {
                return err(format!(
                    "unknown method `{m}` (allowed: {})",
                    METHODS.join(", ")
                ));
            }
        }

        let alphas = parse_floats(get(value, "spec", "alphas")?, "alphas")?;
        if let Some(&bad) = alphas.iter().find(|&&a| a <= 0.0) {
            return err(format!("alphas contains {bad}; every α must be > 0"));
        }

        let job = get(value, "spec", "job")?;
        check_keys(job, "job", &["kind", "exact", "model", "budget_ms"])?;
        let kind = as_str(get(job, "job", "kind")?, "job.kind")?;
        if kind != "certify" {
            return err(format!(
                "unsupported `job.kind` `{kind}` (this build speaks `certify`)"
            ));
        }
        let exact = match job.get("exact") {
            Some(Value::Bool(b)) => *b,
            Some(_) => return err("`job.exact` must be a boolean"),
            None => false,
        };
        let model = match job.get("model") {
            Some(v) => match as_str(v, "job.model")?.as_str() {
                "sum" => ModelKind::SumDistances,
                "maxdist" => ModelKind::MaxDistance,
                other => {
                    return err(format!(
                        "unknown `job.model` `{other}` (allowed: sum, maxdist)"
                    ))
                }
            },
            None => ModelKind::SumDistances,
        };
        let budget_ms = match job.get("budget_ms") {
            Some(Value::Null) | None => None,
            Some(v) => Some(as_exact_int(v, "job.budget_ms")?),
        };

        Ok(Self {
            id,
            claim,
            generator,
            ns,
            seeds,
            methods,
            alphas,
            exact,
            model,
            budget_ms,
        })
    }

    /// The fully-explicit canonical form (see the module docs): keys
    /// sorted, axes expanded, defaults present, `method` an array.
    /// Parsing this value back yields an equal `SweepSpec` — the
    /// canonicalization fixpoint the property tests pin.
    pub fn canonical_value(&self) -> Value {
        let num = |x: f64| Value::Number(x);
        let ints = |xs: &[u64]| Value::Array(xs.iter().map(|&x| num(x as f64)).collect());
        let v = object(vec![
            ("sweep", Value::String(self.id.clone())),
            ("claim", Value::String(self.claim.clone())),
            ("version", num(1.0)),
            (
                "instances",
                object(vec![
                    ("generator", Value::String(self.generator.clone())),
                    (
                        "n",
                        Value::Array(self.ns.iter().map(|&n| num(n as f64)).collect()),
                    ),
                    ("seeds", ints(&self.seeds)),
                ]),
            ),
            (
                "network",
                object(vec![(
                    "method",
                    Value::Array(
                        self.methods
                            .iter()
                            .map(|m| Value::String(m.clone()))
                            .collect(),
                    ),
                )]),
            ),
            (
                "alphas",
                Value::Array(self.alphas.iter().map(|&a| num(a)).collect()),
            ),
            (
                "job",
                object(vec![
                    ("kind", Value::String("certify".into())),
                    ("exact", Value::Bool(self.exact)),
                    ("model", Value::String(self.model.as_str().into())),
                    (
                        "budget_ms",
                        match self.budget_ms {
                            Some(ms) => num(ms as f64),
                            None => Value::Null,
                        },
                    ),
                ]),
            ),
        ]);
        canon::canonicalize(&v)
    }

    /// Compact print of the canonical form.
    pub fn canonical_string(&self) -> String {
        gncg_json::to_string(&self.canonical_value())
    }

    /// Content address of the whole spec.
    pub fn content_key(&self) -> String {
        canon::content_key(&self.canonical_value())
    }

    /// Every `(n, seed, method, alpha)` unit in deterministic order —
    /// the order rows appear in the report and checkpoint.
    pub fn units(&self) -> Vec<SweepUnit> {
        let mut out = Vec::with_capacity(
            self.ns.len() * self.seeds.len() * self.methods.len() * self.alphas.len(),
        );
        for &n in &self.ns {
            for &seed in &self.seeds {
                for method in &self.methods {
                    for &alpha in &self.alphas {
                        out.push(SweepUnit {
                            n,
                            seed,
                            method: method.clone(),
                            alpha,
                        });
                    }
                }
            }
        }
        out
    }
}

/// One unit of a sweep: a single instance × method × α certification.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepUnit {
    /// Requested instance size (the generator may round, e.g. `grid`).
    pub n: usize,
    /// Generator seed.
    pub seed: u64,
    /// Network-construction method.
    pub method: String,
    /// Edge-price factor.
    pub alpha: f64,
}

/// Print a float exactly as the canonical JSON number writer does, so
/// row params and notes are byte-stable across platforms.
pub fn fmt_num(x: f64) -> String {
    gncg_json::to_string(&Value::Number(x))
}

impl SweepUnit {
    /// The unit's row-params / checkpoint key, e.g.
    /// `gen=uniform n=8 seed=7 method=combined alpha=1.5`.
    pub fn params(&self, generator: &str) -> String {
        format!(
            "gen={generator} n={} seed={} method={} alpha={}",
            self.n,
            self.seed,
            self.method,
            fmt_num(self.alpha)
        )
    }
}

/// Canonical description of one generated instance — the `instance`
/// half of every per-unit cache key. The seed is always included, even
/// for seed-independent generators (`grid`, `chain`): keys may
/// over-discriminate, never under-discriminate.
pub fn instance_desc(generator: &str, n: usize, seed: u64) -> Value {
    object(vec![
        ("generator", Value::String(generator.into())),
        ("n", Value::Number(n as f64)),
        ("seed", Value::Number(seed as f64)),
    ])
}

/// Content key of the network-construction step (network + distance
/// matrix). α is always included, even for α-independent methods.
pub fn network_key(generator: &str, n: usize, seed: u64, method: &str, alpha: f64) -> String {
    let spec = object(vec![
        ("op", Value::String("network".into())),
        ("instance", instance_desc(generator, n, seed)),
        (
            "options",
            object(vec![
                ("method", Value::String(method.into())),
                ("alpha", Value::Number(alpha)),
            ]),
        ),
    ]);
    canon::content_key(&spec)
}

/// Content key of the certification step. Every semantic option — α,
/// method, exactness, cost model, evaluation backend, budget — is in
/// the key, so changing any of them changes the address.
#[allow(clippy::too_many_arguments)]
pub fn certify_key(
    generator: &str,
    n: usize,
    seed: u64,
    method: &str,
    alpha: f64,
    exact: bool,
    model: ModelKind,
    backend: &str,
    budget_ms: Option<u64>,
) -> String {
    let spec = object(vec![
        ("op", Value::String("certify".into())),
        ("instance", instance_desc(generator, n, seed)),
        (
            "options",
            object(vec![
                ("method", Value::String(method.into())),
                ("alpha", Value::Number(alpha)),
                ("exact", Value::Bool(exact)),
                ("model", Value::String(model.as_str().into())),
                ("backend", Value::String(backend.into())),
                (
                    "budget_ms",
                    match budget_ms {
                        Some(ms) => Value::Number(ms as f64),
                        None => Value::Null,
                    },
                ),
            ]),
        ),
    ]);
    canon::content_key(&spec)
}

#[cfg(test)]
mod tests {
    use super::*;

    const MINIMAL: &str = r#"{
        "sweep": "t1", "claim": "c", "version": 1,
        "instances": {"generator": "uniform", "n": [4, 6], "seeds": [0, 1]},
        "network": {"method": "mst"},
        "alphas": [1.5],
        "job": {"kind": "certify"}
    }"#;

    #[test]
    fn minimal_spec_parses_with_defaults() {
        let s = SweepSpec::parse(MINIMAL).unwrap();
        assert_eq!(s.id, "t1");
        assert_eq!(s.ns, vec![4, 6]);
        assert_eq!(s.seeds, vec![0, 1]);
        assert_eq!(s.methods, vec!["mst"]);
        assert!(!s.exact);
        assert_eq!(s.model, ModelKind::SumDistances);
        assert_eq!(s.budget_ms, None);
        assert_eq!(s.units().len(), 4);
    }

    #[test]
    fn unknown_fields_are_rejected_everywhere() {
        for (broken, what) in [
            (
                MINIMAL.replace("\"claim\"", "\"extra\": 1, \"claim\""),
                "top level",
            ),
            (
                MINIMAL.replace("\"generator\"", "\"jitter\": 2, \"generator\""),
                "instances",
            ),
            (
                MINIMAL.replace("\"method\"", "\"width\": 3, \"method\""),
                "network",
            ),
            (
                MINIMAL.replace("\"kind\"", "\"retries\": 4, \"kind\""),
                "job",
            ),
        ] {
            assert!(
                SweepSpec::parse(&broken).is_err(),
                "unknown field in {what} accepted"
            );
        }
    }

    #[test]
    fn semantic_validation() {
        assert!(SweepSpec::parse(&MINIMAL.replace("\"version\": 1", "\"version\": 2")).is_err());
        assert!(SweepSpec::parse(&MINIMAL.replace("\"uniform\"", "\"gaussian\"")).is_err());
        assert!(SweepSpec::parse(&MINIMAL.replace("\"mst\"", "\"steiner\"")).is_err());
        assert!(SweepSpec::parse(&MINIMAL.replace("[1.5]", "[-1.0]")).is_err());
        assert!(SweepSpec::parse(&MINIMAL.replace("[4, 6]", "[1]")).is_err());
        assert!(SweepSpec::parse(&MINIMAL.replace("[4, 6]", "[]")).is_err());
    }

    #[test]
    fn ranges_expand_inclusively() {
        let s =
            SweepSpec::parse(&MINIMAL.replace("[4, 6]", r#"{"start": 4, "stop": 8, "step": 2}"#))
                .unwrap();
        assert_eq!(s.ns, vec![4, 6, 8]);
        let s =
            SweepSpec::parse(&MINIMAL.replace("[1.5]", r#"{"start": 1, "stop": 2, "step": 0.5}"#))
                .unwrap();
        assert_eq!(s.alphas, vec![1.0, 1.5, 2.0]);
    }

    #[test]
    fn seed_streams_are_deterministic_and_f64_exact() {
        let a = seed_stream(7, 4);
        let b = seed_stream(7, 4);
        assert_eq!(a, b);
        assert_eq!(a.len(), 4);
        assert!(a.iter().all(|&s| s <= SEED_MASK));
        // distinct bases give distinct streams
        assert_ne!(seed_stream(8, 4), a);
        let via_spec =
            SweepSpec::parse(&MINIMAL.replace("[0, 1]", r#"{"base": 7, "count": 4}"#)).unwrap();
        assert_eq!(via_spec.seeds, a);
    }

    #[test]
    fn canonical_form_is_a_parse_fixpoint() {
        let s = SweepSpec::parse(MINIMAL).unwrap();
        let printed = s.canonical_string();
        let reparsed = SweepSpec::parse(&printed).unwrap();
        assert_eq!(reparsed, s);
        assert_eq!(reparsed.canonical_string(), printed);
    }

    #[test]
    fn unit_order_is_deterministic() {
        let s = SweepSpec::parse(MINIMAL).unwrap();
        let params: Vec<String> = s.units().iter().map(|u| u.params(&s.generator)).collect();
        assert_eq!(
            params,
            vec![
                "gen=uniform n=4 seed=0 method=mst alpha=1.5",
                "gen=uniform n=4 seed=1 method=mst alpha=1.5",
                "gen=uniform n=6 seed=0 method=mst alpha=1.5",
                "gen=uniform n=6 seed=1 method=mst alpha=1.5",
            ]
        );
    }
}
