//! Experiment reports: rows, atomic JSON saves, log-log fits.
//!
//! Each repro binary regenerates one table/figure of the paper and
//! prints a self-describing report: the paper's claim, the measured
//! quantity, and a PASS/FAIL verdict on the claim's *shape* (who wins,
//! growth exponent, crossover). Reports are also dumped as JSON under
//! `results/` so EXPERIMENTS.md tables can be regenerated.
//!
//! The writing side is crash-safe: [`Report::save`] writes a temp file
//! and renames it into place (a killed run never leaves a truncated
//! `results/*.json`), and numeric fields are validated at push time
//! (NaN/Inf is an error, absent values are an explicit `None` that
//! serializes as `null` and prints as `-`).

use gncg_json::{object, FromJson, JsonError, ToJson, Value};
use std::io::Write as _;
use std::path::PathBuf;

/// One row of an experiment report.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Independent variables, e.g. `alpha=4 n=100`.
    pub params: String,
    /// The paper's predicted value or bound for this row; `None` when
    /// the row has no paper-side reference (serialized as `null`,
    /// printed as `-`).
    pub paper: Option<f64>,
    /// What we measured; `None` for degenerate rows (e.g. "no cycle
    /// found in this seed range") that carry only a note.
    pub measured: Option<f64>,
    /// Whether the row satisfies the claim being tested.
    pub ok: bool,
    /// Extra context.
    pub note: String,
}

/// An experiment report: one section of Table 1 or one figure.
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// Experiment id, e.g. `thm_4_3` or `fig4`.
    pub id: String,
    /// Human description of the claim under test.
    pub claim: String,
    /// Data rows.
    pub rows: Vec<Row>,
    /// Wall time of the in-process pure-CPU calibration loop, in
    /// seconds, for reports whose `measured` rows are raw wall times a
    /// consumer (the perf gate) must normalize by this constant before
    /// cross-machine comparison. `None` (omitted from the JSON) for
    /// ordinary experiment reports.
    pub calibration_secs: Option<f64>,
}

/// A NaN or ±Inf was pushed into a numeric report field.
#[derive(Debug, Clone, PartialEq)]
pub struct NonFiniteValue {
    /// Which field (`"paper"` or `"measured"`).
    pub field: &'static str,
    /// The offending value.
    pub value: f64,
    /// The row's params, for context.
    pub params: String,
}

impl std::fmt::Display for NonFiniteValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "non-finite {} value {} in row `{}` — use an Option-taking push \
             variant for rows without a number",
            self.field, self.value, self.params
        )
    }
}

impl std::error::Error for NonFiniteValue {}

impl ToJson for Row {
    fn to_json(&self) -> Value {
        object(vec![
            ("params", self.params.to_json()),
            ("paper", self.paper.to_json()),
            ("measured", self.measured.to_json()),
            ("ok", self.ok.to_json()),
            ("note", self.note.to_json()),
        ])
    }
}

impl FromJson for Row {
    fn from_json(value: &Value) -> Result<Self, JsonError> {
        let field = |key: &str| {
            value
                .get(key)
                .ok_or_else(|| JsonError::new(format!("row missing field `{key}`")))
        };
        Ok(Row {
            params: String::from_json(field("params")?)?,
            paper: Option::<f64>::from_json(field("paper")?)?,
            measured: Option::<f64>::from_json(field("measured")?)?,
            ok: bool::from_json(field("ok")?)?,
            note: String::from_json(field("note")?)?,
        })
    }
}

impl ToJson for Report {
    fn to_json(&self) -> Value {
        let mut fields = vec![
            ("id", self.id.to_json()),
            ("claim", self.claim.to_json()),
            ("rows", self.rows.to_json()),
        ];
        // only perf reports carry the constant; every other report's
        // JSON stays byte-identical to before the field existed
        if let Some(c) = self.calibration_secs {
            fields.push(("calibration_secs", c.to_json()));
        }
        object(fields)
    }
}

impl FromJson for Report {
    fn from_json(value: &Value) -> Result<Self, JsonError> {
        let field = |key: &str| {
            value
                .get(key)
                .ok_or_else(|| JsonError::new(format!("report missing field `{key}`")))
        };
        Ok(Report {
            id: String::from_json(field("id")?)?,
            claim: String::from_json(field("claim")?)?,
            rows: Vec::<Row>::from_json(field("rows")?)?,
            calibration_secs: match value.get("calibration_secs") {
                Some(v) => Some(f64::from_json(v)?),
                None => None,
            },
        })
    }
}

impl Report {
    /// Start an empty report.
    pub fn new(id: &str, claim: &str) -> Self {
        Self {
            id: id.to_string(),
            claim: claim.to_string(),
            rows: Vec::new(),
            calibration_secs: None,
        }
    }

    /// Record the calibration-loop wall time (> 0, finite) this
    /// report's raw stage times must be normalized by. Perf-gate
    /// reports call this so the constant travels *inside* the baseline
    /// file instead of being baked invisibly into the row values.
    pub fn set_calibration(&mut self, secs: f64) {
        assert!(
            secs.is_finite() && secs > 0.0,
            "calibration time must be positive and finite, got {secs}"
        );
        self.calibration_secs = Some(secs);
    }

    /// Append a row, rejecting NaN/Inf in either numeric field. `None`
    /// means "this row legitimately has no such number" and is always
    /// accepted.
    pub fn try_push(
        &mut self,
        params: String,
        paper: Option<f64>,
        measured: Option<f64>,
        ok: bool,
        note: &str,
    ) -> Result<(), NonFiniteValue> {
        for (field, v) in [("paper", paper), ("measured", measured)] {
            if let Some(x) = v {
                if !x.is_finite() {
                    return Err(NonFiniteValue {
                        field,
                        value: x,
                        params,
                    });
                }
            }
        }
        self.rows.push(Row {
            params,
            paper,
            measured,
            ok,
            note: note.to_string(),
        });
        Ok(())
    }

    /// Append a row with both numbers present. Panics (with the offending
    /// field and row named) when either is NaN/Inf — a sweep that
    /// produces a non-finite headline number has a bug, and silently
    /// serializing `null` used to hide it.
    pub fn push(&mut self, params: String, paper: f64, measured: f64, ok: bool, note: &str) {
        self.try_push(params, Some(paper), Some(measured), ok, note)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    /// Append a measured-only row (no paper-side reference value).
    pub fn push_unreferenced(&mut self, params: String, measured: f64, ok: bool, note: &str) {
        self.try_push(params, None, Some(measured), ok, note)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    /// Append a degenerate row carrying only a verdict and a note (e.g.
    /// "no cycle found in this seed range").
    pub fn push_degenerate(&mut self, params: String, ok: bool, note: &str) {
        self.try_push(params, None, None, ok, note)
            .expect("degenerate rows have no numeric fields");
    }

    /// Did every row pass?
    pub fn all_ok(&self) -> bool {
        self.rows.iter().all(|r| r.ok)
    }

    /// Print the report as an aligned text table.
    pub fn print(&self) {
        let num = |v: Option<f64>| match v {
            Some(x) => format!("{x:>14.6}"),
            None => format!("{:>14}", "-"),
        };
        println!("== {} ==", self.id);
        println!("   {}", self.claim);
        println!(
            "   {:<38} {:>14} {:>14}  {:<4} note",
            "params", "paper", "measured", "ok"
        );
        for r in &self.rows {
            println!(
                "   {:<38} {} {}  {:<4} {}",
                r.params,
                num(r.paper),
                num(r.measured),
                if r.ok { "PASS" } else { "FAIL" },
                r.note
            );
        }
        println!(
            "   => {}",
            if self.all_ok() {
                "ALL PASS"
            } else {
                "FAILURES PRESENT"
            }
        );
        println!();
    }

    /// Write the report as JSON under `results/<id>.json` (repo root
    /// when run via `cargo run`, else the current directory).
    ///
    /// The write is atomic: content goes to `<id>.json.tmp` first and is
    /// renamed into place, so a run killed mid-write leaves either the
    /// previous complete file or the new complete file — never a
    /// truncated one.
    pub fn save(&self) -> std::io::Result<PathBuf> {
        let dir = results_dir();
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{}.json", self.id));
        let tmp = dir.join(format!("{}.json.tmp", self.id));
        // With GNCG_TRACE=1 the saved file carries a `trace` section (the
        // process-wide counter/span snapshot at save time). The section is
        // added here, not in `to_json`, so checkpoint lines and the
        // default GNCG_TRACE=0 output stay byte-identical to before.
        let mut value = self.to_json();
        if gncg_trace::enabled() {
            if let Value::Object(entries) = &mut value {
                entries.push(("trace".to_string(), gncg_trace::snapshot().to_json()));
            }
        }
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(gncg_json::to_string_pretty(&value).as_bytes())?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, &path)?;
        Ok(path)
    }
}

/// Resolve the `results/` output directory: `GNCG_RESULTS_DIR` override
/// (re-read on every call — tests redirect it at runtime), else
/// `<workspace>/results` when detectable, else `./results`.
pub fn results_dir() -> PathBuf {
    if let Some(d) = gncg_config::env::results_dir() {
        return d;
    }
    if let Ok(manifest) = std::env::var("CARGO_MANIFEST_DIR") {
        // crates/sweep -> workspace root two levels up
        let p = PathBuf::from(manifest);
        if let Some(root) = p.parent().and_then(|p| p.parent()) {
            return root.join("results");
        }
    }
    PathBuf::from("results")
}

/// Why a log-log fit could not be performed.
#[derive(Debug, Clone, PartialEq)]
pub enum FitError {
    /// Fewer than two points.
    TooFewPoints {
        /// How many points were provided.
        got: usize,
    },
    /// A point with non-positive coordinates (logarithm undefined).
    NonPositivePoint {
        /// Index of the offending point.
        index: usize,
        /// Its coordinates.
        x: f64,
        /// Its coordinates.
        y: f64,
    },
}

impl std::fmt::Display for FitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FitError::TooFewPoints { got } => {
                write!(f, "log-log fit needs at least 2 points, got {got}")
            }
            FitError::NonPositivePoint { index, x, y } => write!(
                f,
                "log-log fit needs positive data, point {index} is ({x}, {y})"
            ),
        }
    }
}

impl std::error::Error for FitError {}

/// Fit the slope of `log(y) ~ slope·log(x) + intercept` — the measured
/// growth exponent for Figure 4 / Theorem 4.3 style claims.
///
/// A single degenerate sweep point (zero/negative, e.g. a run where the
/// measured quantity collapsed) yields an error the caller can report as
/// a failed row instead of aborting the whole figure regeneration.
pub fn log_log_slope(points: &[(f64, f64)]) -> Result<f64, FitError> {
    if points.len() < 2 {
        return Err(FitError::TooFewPoints { got: points.len() });
    }
    let mut logs = Vec::with_capacity(points.len());
    for (index, &(x, y)) in points.iter().enumerate() {
        if !(x > 0.0 && y > 0.0) {
            return Err(FitError::NonPositivePoint { index, x, y });
        }
        logs.push((x.ln(), y.ln()));
    }
    let n = logs.len() as f64;
    let sx: f64 = logs.iter().map(|p| p.0).sum();
    let sy: f64 = logs.iter().map(|p| p.1).sum();
    let sxx: f64 = logs.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = logs.iter().map(|p| p.0 * p.1).sum();
    Ok((n * sxy - sx * sy) / (n * sxx - sx * sx))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slope_of_power_law() {
        let pts: Vec<(f64, f64)> = (1..20)
            .map(|i| {
                let x = i as f64;
                (x, 3.0 * x.powf(1.5))
            })
            .collect();
        assert!((log_log_slope(&pts).unwrap() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn slope_of_constant_is_zero() {
        let pts: Vec<(f64, f64)> = (1..10).map(|i| (i as f64, 7.0)).collect();
        assert!(log_log_slope(&pts).unwrap().abs() < 1e-9);
    }

    #[test]
    fn slope_errors_are_values_not_panics() {
        assert_eq!(
            log_log_slope(&[(1.0, 1.0)]),
            Err(FitError::TooFewPoints { got: 1 })
        );
        match log_log_slope(&[(1.0, 2.0), (3.0, 0.0)]) {
            Err(FitError::NonPositivePoint { index: 1, .. }) => {}
            other => panic!("expected NonPositivePoint, got {other:?}"),
        }
    }

    #[test]
    fn report_roundtrip() {
        let mut r = Report::new("test_report", "testing");
        r.push("a=1".into(), 1.0, 1.1, true, "");
        r.push("a=2".into(), 2.0, 1.9, true, "x");
        assert!(r.all_ok());
        r.push("a=3".into(), 3.0, 9.9, false, "bad");
        assert!(!r.all_ok());
    }

    #[test]
    fn non_finite_pushes_are_rejected() {
        let mut r = Report::new("nf", "testing");
        let err = r
            .try_push("a=1".into(), Some(f64::NAN), Some(1.0), true, "")
            .unwrap_err();
        assert_eq!(err.field, "paper");
        assert!(err.to_string().contains("a=1"));
        let err = r
            .try_push("a=2".into(), None, Some(f64::INFINITY), true, "")
            .unwrap_err();
        assert_eq!(err.field, "measured");
        assert!(r.rows.is_empty());
        // absent values are fine
        r.push_degenerate("a=3".into(), true, "no data in range");
        r.push_unreferenced("a=4".into(), 2.5, true, "");
        assert_eq!(r.rows.len(), 2);
        assert_eq!(r.rows[0].measured, None);
        assert_eq!(r.rows[1].paper, None);
    }

    #[test]
    fn report_json_roundtrips_including_absent_values() {
        let mut r = Report::new("rt", "roundtrip claim");
        r.push("a=1".into(), 1.5, 1.25, true, "note");
        r.push_degenerate("a=2".into(), false, "degenerate");
        r.push_unreferenced("a=3".into(), 0.5, true, "");
        let text = gncg_json::to_string_pretty(&r);
        let back = Report::from_json(&gncg_json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn save_is_atomic_and_leaves_no_tmp() {
        let dir = std::env::temp_dir().join(format!("gncg_bench_save_{}", std::process::id()));
        std::env::set_var("GNCG_RESULTS_DIR", &dir);
        let mut r = Report::new("atomic_save_test", "claim");
        r.push("a=1".into(), 1.0, 1.0, true, "");
        let path = r.save().unwrap();
        std::env::remove_var("GNCG_RESULTS_DIR");
        assert!(path.exists());
        assert!(!path.with_extension("json.tmp").exists());
        let text = std::fs::read_to_string(&path).unwrap();
        let back = Report::from_json(&gncg_json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, r);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
