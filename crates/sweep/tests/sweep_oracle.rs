//! The replay oracle (ISSUE 9 acceptance): every committed
//! `specs/*.sweep.json` must reproduce its committed `results/<id>.json`
//! **byte-for-byte** in all three execution regimes —
//!
//! * **direct**: no cache, engine inline on this thread;
//! * **cold**: a fresh content-addressed cache, units submitted through
//!   a [`Session`] (the `gncg sweep run` path);
//! * **warm**: the same cache again, engine inline (every unit a hit).
//!
//! The comparison is against the bytes in git, so any drift — in a
//! generator, a solver kernel, the canonical JSON printer, the report
//! shape, or the cache — fails this suite before it can silently
//! rewrite the repository's reproduction artifacts.

use std::fs;
use std::path::PathBuf;
use std::sync::Arc;

use gncg_json::ToJson;
use gncg_parallel::Budget;
use gncg_service::cache::ResultCache;
use gncg_service::Session;
use gncg_sweep::engine::run_spec;
use gncg_sweep::spec::SweepSpec;

fn repo_root() -> PathBuf {
    // crates/sweep -> workspace root two levels up
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("workspace root")
        .to_path_buf()
}

fn committed_specs() -> Vec<(PathBuf, SweepSpec)> {
    let dir = repo_root().join("specs");
    let mut specs: Vec<(PathBuf, SweepSpec)> = fs::read_dir(&dir)
        .expect("specs/ directory exists")
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.to_string_lossy().ends_with(".sweep.json"))
        .map(|p| {
            let text = fs::read_to_string(&p).expect("spec readable");
            let spec = SweepSpec::parse(&text).unwrap_or_else(|e| panic!("{}: {e}", p.display()));
            (p, spec)
        })
        .collect();
    specs.sort_by(|a, b| a.0.cmp(&b.0));
    assert!(
        !specs.is_empty(),
        "no committed specs found in {}",
        dir.display()
    );
    specs
}

fn scratch(tag: &str, id: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "gncg_sweep_oracle_{tag}_{id}_{}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&d);
    d
}

/// What `Report::save` writes with tracing off (the committed-results
/// regime): the pretty print of the report JSON.
fn report_bytes(report: &gncg_sweep::Report) -> String {
    gncg_json::to_string_pretty(&report.to_json())
}

#[test]
fn committed_specs_are_named_after_their_sweep_ids() {
    for (path, spec) in committed_specs() {
        let expected = format!("{}.sweep.json", spec.id);
        assert_eq!(
            path.file_name().unwrap().to_string_lossy(),
            expected,
            "spec file name must match its `sweep` id"
        );
    }
}

#[test]
fn every_committed_spec_replays_its_results_byte_for_byte() {
    for (path, spec) in committed_specs() {
        let committed_path = repo_root()
            .join("results")
            .join(format!("{}.json", spec.id));
        let committed = fs::read_to_string(&committed_path).unwrap_or_else(|e| {
            panic!(
                "{}: committed results missing ({e}); run `gncg sweep run --spec {}`",
                committed_path.display(),
                path.display()
            )
        });

        // -- direct: no cache, inline --------------------------------
        let direct = run_spec(
            &spec,
            None,
            None,
            &Budget::unlimited(),
            Some(scratch("direct", &spec.id).join("ckpt.json")),
        );
        assert!(!direct.interrupted);
        assert_eq!(
            report_bytes(&direct.report),
            committed,
            "{}: direct run diverged from committed results",
            path.display()
        );

        // -- cold: fresh cache, units through a Session --------------
        let cache_dir = scratch("cache", &spec.id);
        let cache = Arc::new(ResultCache::at(&cache_dir).unwrap());
        let session = Session::new();
        let cold = run_spec(
            &spec,
            Some(Arc::clone(&cache)),
            Some(&session),
            &Budget::unlimited(),
            Some(scratch("cold", &spec.id).join("ckpt.json")),
        );
        assert!(!cold.interrupted);
        assert_eq!(
            report_bytes(&cold.report),
            committed,
            "{}: cold-cache run diverged from committed results",
            path.display()
        );
        let entries_after_cold = cache.entry_count().unwrap();
        assert!(
            entries_after_cold > 0,
            "{}: cold run cached nothing",
            path.display()
        );

        // -- warm: same cache, inline (every unit a hit) -------------
        let warm = run_spec(
            &spec,
            Some(Arc::clone(&cache)),
            None,
            &Budget::unlimited(),
            Some(scratch("warm", &spec.id).join("ckpt.json")),
        );
        assert!(!warm.interrupted);
        assert_eq!(
            report_bytes(&warm.report),
            committed,
            "{}: warm-cache run diverged from committed results",
            path.display()
        );
        assert_eq!(
            cache.entry_count().unwrap(),
            entries_after_cold,
            "{}: warm run missed entries it should have hit",
            path.display()
        );
        let _ = fs::remove_dir_all(&cache_dir);
    }
}
