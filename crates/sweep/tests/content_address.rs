//! Property tests for the sweep content address (ISSUE 9 satellite):
//! the canonicalizer is a fixpoint, every *syntactic* variant of a spec
//! (key order, float spelling, range vs. explicit list, elided
//! defaults) hashes identically, and every *semantic* change (α, model,
//! seed, exactness, backend, budget, …) changes the hash.
//!
//! Case count scales with `PROPTEST_CASES` (default 48; nightly runs
//! 4096). Failures print the case seed, which replays the instance.

use std::collections::HashSet;

use gncg_config::ModelKind;
use gncg_sweep::spec::{certify_key, fmt_num, network_key, seed_stream, SweepSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn cases() -> u64 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(48)
}

const GENERATORS: [&str; 4] = ["uniform", "grid", "cluster", "chain"];
const METHODS: [&str; 5] = ["combined", "alg1", "mst", "complete", "star"];

/// The randomized sweep shape every property below runs over. All axes
/// are arithmetic progressions so the same sweep is expressible both as
/// explicit lists and as range/stream objects.
struct Case {
    id: String,
    claim: String,
    generator: &'static str,
    n_start: u64,
    n_step: u64,
    n_count: u64,
    seed_base: u64,
    seed_count: u64,
    methods: Vec<&'static str>,
    a_start: f64,
    a_step: f64,
    a_count: u32,
    exact: bool,
    model: ModelKind,
    budget_ms: Option<u64>,
}

impl Case {
    fn random(rng: &mut StdRng) -> Self {
        let method_lo = rng.gen_range(0..METHODS.len());
        let method_hi = rng.gen_range(method_lo..METHODS.len());
        Case {
            id: format!("case_{}", rng.gen_range(0..1_000_000u64)),
            claim: format!("claim {}", rng.gen_range(0..1_000u64)),
            generator: GENERATORS[rng.gen_range(0..GENERATORS.len())],
            n_start: rng.gen_range(2..8),
            n_step: rng.gen_range(1..4),
            n_count: rng.gen_range(1..4),
            seed_base: rng.gen_range(0..1_000_000),
            seed_count: rng.gen_range(1..4),
            methods: METHODS[method_lo..=method_hi].to_vec(),
            // Multiples of 0.25: exactly representable, and ×10/×100
            // stay exact so exponent re-spellings parse to the same f64.
            a_start: f64::from(rng.gen_range(1u32..12)) * 0.25,
            a_step: f64::from(rng.gen_range(1u32..8)) * 0.25,
            a_count: rng.gen_range(1..4),
            exact: rng.gen_bool(0.5),
            model: if rng.gen_bool(0.5) {
                ModelKind::SumDistances
            } else {
                ModelKind::MaxDistance
            },
            budget_ms: if rng.gen_bool(0.25) {
                Some(rng.gen_range(1..100_000))
            } else {
                None
            },
        }
    }

    fn ns(&self) -> Vec<u64> {
        (0..self.n_count)
            .map(|i| self.n_start + i * self.n_step)
            .collect()
    }

    fn alphas(&self) -> Vec<f64> {
        (0..self.a_count)
            .map(|i| self.a_start + f64::from(i) * self.a_step)
            .collect()
    }

    fn job_fields(&self) -> Vec<String> {
        let mut fields = vec!["\"kind\": \"certify\"".to_string()];
        if self.exact {
            fields.push("\"exact\": true".into());
        }
        if self.model == ModelKind::MaxDistance {
            fields.push("\"model\": \"maxdist\"".into());
        }
        if let Some(ms) = self.budget_ms {
            fields.push(format!("\"budget_ms\": {ms}"));
        }
        fields
    }

    /// Plain spelling: explicit lists, defaults elided where possible,
    /// keys in the documented order, floats in shortest form.
    fn text_plain(&self) -> String {
        let ns: Vec<String> = self.ns().iter().map(|n| n.to_string()).collect();
        let seeds: Vec<String> = seed_stream(self.seed_base, self.seed_count as usize)
            .iter()
            .map(|s| s.to_string())
            .collect();
        let methods: Vec<String> = self.methods.iter().map(|m| format!("\"{m}\"")).collect();
        let alphas: Vec<String> = self.alphas().iter().map(|&a| fmt_num(a)).collect();
        format!(
            r#"{{"sweep": "{}", "claim": "{}", "version": 1,
                "instances": {{"generator": "{}", "n": [{}], "seeds": [{}]}},
                "network": {{"method": [{}]}},
                "alphas": [{}],
                "job": {{{}}}}}"#,
            self.id,
            self.claim,
            self.generator,
            ns.join(", "),
            seeds.join(", "),
            methods.join(", "),
            alphas.join(", "),
            self.job_fields().join(", "),
        )
    }

    /// Adversarial spelling of the *same* sweep: ranges and seed
    /// streams instead of lists, shuffled key order at every level,
    /// exponent float spellings, defaults written out explicitly, and
    /// a single-method sweep spelled as a bare string.
    fn text_variant(&self, rng: &mut StdRng) -> String {
        let n = format!(
            r#"{{"start": {}, "stop": {}, "step": {}}}"#,
            self.n_start,
            self.n_start + (self.n_count - 1) * self.n_step,
            self.n_step
        );
        let seeds = format!(
            r#"{{"base": {}, "count": {}}}"#,
            self.seed_base, self.seed_count
        );
        // `start + i·step` exceeds the stop by at most 1e-9 tolerance;
        // print the exact stop so the range expands to the same list.
        let a_stop = self.a_start + f64::from(self.a_count - 1) * self.a_step;
        let alphas = format!(
            r#"{{"start": {}, "stop": {}, "step": {}}}"#,
            respell(self.a_start, rng),
            respell(a_stop, rng),
            respell(self.a_step, rng),
        );
        let method = if self.methods.len() == 1 {
            format!("\"{}\"", self.methods[0])
        } else {
            let ms: Vec<String> = self.methods.iter().map(|m| format!("\"{m}\"")).collect();
            format!("[{}]", ms.join(","))
        };
        let instances = shuffled_object(
            rng,
            vec![
                ("generator", format!("\"{}\"", self.generator)),
                ("n", n),
                ("seeds", seeds),
            ],
        );
        let job = shuffled_object(
            rng,
            vec![
                ("kind", "\"certify\"".into()),
                ("exact", self.exact.to_string()),
                ("model", format!("\"{}\"", self.model.as_str())),
                (
                    "budget_ms",
                    match self.budget_ms {
                        Some(ms) => ms.to_string(),
                        None => "null".into(),
                    },
                ),
            ],
        );
        shuffled_object(
            rng,
            vec![
                ("sweep", format!("\"{}\"", self.id)),
                ("claim", format!("\"{}\"", self.claim)),
                ("version", "1".into()),
                ("instances", instances),
                ("network", format!("{{\"method\": {method}}}")),
                ("alphas", alphas),
                ("job", job),
            ],
        )
    }
}

/// Re-spell a multiple-of-0.25 float with a random (exactly-parsing)
/// exponent form.
fn respell(x: f64, rng: &mut StdRng) -> String {
    match rng.gen_range(0..3) {
        0 => fmt_num(x),
        1 => format!("{}e0", fmt_num(x)),
        // ×10 keeps quarter-multiples exact (k·0.25·10 = k·2.5).
        _ => format!("{}e-1", fmt_num(x * 10.0)),
    }
}

/// Print an object with its keys in random order.
fn shuffled_object(rng: &mut StdRng, mut fields: Vec<(&str, String)>) -> String {
    for i in (1..fields.len()).rev() {
        fields.swap(i, rng.gen_range(0..i + 1));
    }
    let parts: Vec<String> = fields
        .into_iter()
        .map(|(k, v)| format!("\"{k}\": {v}"))
        .collect();
    format!("{{{}}}", parts.join(", "))
}

#[test]
fn canonicalization_is_a_fixpoint_over_random_specs() {
    for case_seed in 0..cases() {
        let mut rng = StdRng::seed_from_u64(0xF1F0 ^ case_seed);
        let case = Case::random(&mut rng);
        let spec = SweepSpec::parse(&case.text_plain())
            .unwrap_or_else(|e| panic!("case {case_seed}: plain spelling rejected: {e}"));
        let canonical = spec.canonical_string();
        let reparsed = SweepSpec::parse(&canonical)
            .unwrap_or_else(|e| panic!("case {case_seed}: canonical form rejected: {e}"));
        assert_eq!(reparsed, spec, "case {case_seed}: canonical form drifted");
        assert_eq!(
            reparsed.canonical_string(),
            canonical,
            "case {case_seed}: canonicalization not idempotent"
        );
    }
}

#[test]
fn syntactic_variants_hash_identically() {
    for case_seed in 0..cases() {
        let mut rng = StdRng::seed_from_u64(0x5EED ^ case_seed);
        let case = Case::random(&mut rng);
        let plain = SweepSpec::parse(&case.text_plain())
            .unwrap_or_else(|e| panic!("case {case_seed}: plain spelling rejected: {e}"));
        let variant_text = case.text_variant(&mut rng);
        let variant = SweepSpec::parse(&variant_text).unwrap_or_else(|e| {
            panic!("case {case_seed}: variant spelling rejected: {e}\n{variant_text}")
        });
        assert_eq!(
            variant, plain,
            "case {case_seed}: spellings parsed to different sweeps\n{variant_text}"
        );
        assert_eq!(
            variant.content_key(),
            plain.content_key(),
            "case {case_seed}: same sweep, different content key\n{variant_text}"
        );
    }
}

#[test]
fn every_semantic_change_changes_the_spec_key() {
    for case_seed in 0..cases() {
        let mut rng = StdRng::seed_from_u64(0xBEEF ^ case_seed);
        let case = Case::random(&mut rng);
        let base = SweepSpec::parse(&case.text_plain()).unwrap();
        let mutations: Vec<(&str, SweepSpec)> = vec![
            ("alpha", {
                let mut s = base.clone();
                s.alphas[0] += 0.25;
                s
            }),
            ("model", {
                let mut s = base.clone();
                s.model = match s.model {
                    ModelKind::SumDistances => ModelKind::MaxDistance,
                    ModelKind::MaxDistance => ModelKind::SumDistances,
                };
                s
            }),
            ("exact", {
                let mut s = base.clone();
                s.exact = !s.exact;
                s
            }),
            ("seed", {
                let mut s = base.clone();
                s.seeds[0] += 1;
                s
            }),
            ("n", {
                let mut s = base.clone();
                s.ns[0] += 1;
                s
            }),
            ("method", {
                let mut s = base.clone();
                let replacement = if s.methods[0] == "mst" { "star" } else { "mst" };
                s.methods[0] = replacement.into();
                s
            }),
            ("generator", {
                let mut s = base.clone();
                s.generator = if s.generator == "grid" {
                    "chain"
                } else {
                    "grid"
                }
                .into();
                s
            }),
            ("budget", {
                let mut s = base.clone();
                s.budget_ms = match s.budget_ms {
                    Some(_) => None,
                    None => Some(5_000),
                };
                s
            }),
        ];
        let base_key = base.content_key();
        let mut keys = HashSet::new();
        keys.insert(base_key.clone());
        for (what, mutant) in mutations {
            let key = mutant.content_key();
            assert_ne!(
                key, base_key,
                "case {case_seed}: changing {what} kept the content key"
            );
            assert!(
                keys.insert(key),
                "case {case_seed}: two distinct mutations ({what} among them) collided"
            );
        }
    }
}

#[test]
fn unit_keys_discriminate_every_option() {
    for case_seed in 0..cases() {
        let mut rng = StdRng::seed_from_u64(0xCAFE ^ case_seed);
        let g = GENERATORS[rng.gen_range(0..GENERATORS.len())];
        let g2 = GENERATORS[(GENERATORS.iter().position(|&x| x == g).unwrap() + 1) % 4];
        let m = METHODS[rng.gen_range(0..METHODS.len())];
        let m2 = METHODS[(METHODS.iter().position(|&x| x == m).unwrap() + 1) % 5];
        let n = rng.gen_range(2..64usize);
        let seed = rng.gen_range(0..1u64 << 50);
        let alpha = f64::from(rng.gen_range(1u32..64)) * 0.25;
        let exact = rng.gen_bool(0.5);
        let model = if rng.gen_bool(0.5) {
            ModelKind::SumDistances
        } else {
            ModelKind::MaxDistance
        };
        let other_model = match model {
            ModelKind::SumDistances => ModelKind::MaxDistance,
            ModelKind::MaxDistance => ModelKind::SumDistances,
        };
        let budget = if rng.gen_bool(0.5) { None } else { Some(750) };
        let other_budget = match budget {
            Some(_) => None,
            None => Some(750),
        };

        let base = certify_key(g, n, seed, m, alpha, exact, model, "exact", budget);
        assert_eq!(base.len(), 64, "content keys are sha256 hex");
        let variants = [
            (
                "generator",
                certify_key(g2, n, seed, m, alpha, exact, model, "exact", budget),
            ),
            (
                "n",
                certify_key(g, n + 1, seed, m, alpha, exact, model, "exact", budget),
            ),
            (
                "seed",
                certify_key(g, n, seed + 1, m, alpha, exact, model, "exact", budget),
            ),
            (
                "method",
                certify_key(g, n, seed, m2, alpha, exact, model, "exact", budget),
            ),
            (
                "alpha",
                certify_key(g, n, seed, m, alpha + 0.25, exact, model, "exact", budget),
            ),
            (
                "exact",
                certify_key(g, n, seed, m, alpha, !exact, model, "exact", budget),
            ),
            (
                "model",
                certify_key(g, n, seed, m, alpha, exact, other_model, "exact", budget),
            ),
            (
                "backend",
                certify_key(g, n, seed, m, alpha, exact, model, "spanner", budget),
            ),
            (
                "budget",
                certify_key(g, n, seed, m, alpha, exact, model, "exact", other_budget),
            ),
        ];
        let mut keys = HashSet::new();
        keys.insert(base.clone());
        for (what, key) in variants {
            assert_ne!(key, base, "case {case_seed}: certify_key ignored {what}");
            assert!(
                keys.insert(key),
                "case {case_seed}: certify_key collision via {what}"
            );
        }

        let net_base = network_key(g, n, seed, m, alpha);
        let net_variants = [
            ("generator", network_key(g2, n, seed, m, alpha)),
            ("n", network_key(g, n + 1, seed, m, alpha)),
            ("seed", network_key(g, n, seed + 1, m, alpha)),
            ("method", network_key(g, n, seed, m2, alpha)),
            ("alpha", network_key(g, n, seed, m, alpha + 0.25)),
        ];
        let mut net_keys = HashSet::new();
        net_keys.insert(net_base.clone());
        assert_ne!(
            net_base, base,
            "network and certify keys share an address space"
        );
        for (what, key) in net_variants {
            assert_ne!(
                key, net_base,
                "case {case_seed}: network_key ignored {what}"
            );
            assert!(
                net_keys.insert(key),
                "case {case_seed}: network_key collision via {what}"
            );
        }
    }
}
