//! Edge-ownership assignment: orientations with bounded out-degree.
//!
//! Algorithm 1 requires assigning every spanner edge to one endpoint such
//! that each agent owns at most `k` edges — the paper calls a spanner with
//! such an assignment *k-distributable* (Footnote 3). We provide:
//!
//! * [`degeneracy_ordering`] — smallest-last vertex ordering; orienting
//!   every edge from the endpoint that is removed *first* bounds the
//!   out-degree by the graph's degeneracy, which is the optimum up to
//!   rounding for any orientation,
//! * [`bounded_outdegree_orientation`] — said orientation,
//! * [`bipartite_orientation`] — the Theorem 3.13 grid assignment: one
//!   side of a 2-colouring buys everything.

use crate::Graph;

/// Smallest-last (degeneracy) ordering. Returns `(order, degeneracy)`:
/// `order[i]` is the i-th vertex removed; the degeneracy is the maximum,
/// over removal steps, of the removed vertex's residual degree.
pub fn degeneracy_ordering(g: &Graph) -> (Vec<usize>, usize) {
    let n = g.len();
    let mut deg: Vec<usize> = (0..n).map(|u| g.degree(u)).collect();
    let max_deg = deg.iter().copied().max().unwrap_or(0);
    // bucket queue over residual degree
    let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); max_deg + 1];
    for u in 0..n {
        buckets[deg[u]].push(u);
    }
    let mut removed = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut degeneracy = 0;
    let mut cursor = 0usize;
    for _ in 0..n {
        // find the non-empty bucket with smallest degree; the cursor can
        // go down by at most 1 per removal, so reset conservatively
        cursor = cursor.saturating_sub(1);
        let u = loop {
            while cursor <= max_deg && buckets[cursor].is_empty() {
                cursor += 1;
            }
            assert!(cursor <= max_deg, "bucket queue exhausted early");
            let cand = buckets[cursor].pop().unwrap();
            if !removed[cand] && deg[cand] == cursor {
                break cand;
            }
            // stale entry; skip (lazy deletion)
        };
        removed[u] = true;
        degeneracy = degeneracy.max(deg[u]);
        order.push(u);
        for &(v, _) in g.neighbors(u) {
            if !removed[v] {
                deg[v] -= 1;
                buckets[deg[v]].push(v);
                if deg[v] < cursor {
                    cursor = deg[v];
                }
            }
        }
    }
    (order, degeneracy)
}

/// Orient every edge of `g`, returning `owner[(u,v)]` as a list of
/// `(owner, other, w)` triples, such that the maximum number of edges
/// owned by a single vertex is at most the degeneracy of `g`.
pub fn bounded_outdegree_orientation(g: &Graph) -> Vec<(usize, usize, f64)> {
    let n = g.len();
    let (order, _) = degeneracy_ordering(g);
    let mut rank = vec![0usize; n];
    for (i, &u) in order.iter().enumerate() {
        rank[u] = i;
    }
    // the vertex removed earlier owns the edge: it has ≤ degeneracy
    // neighbours still present at its removal time
    g.edges()
        .into_iter()
        .map(|(u, v, w)| {
            if rank[u] < rank[v] {
                (u, v, w)
            } else {
                (v, u, w)
            }
        })
        .collect()
}

/// Maximum out-degree (edges owned per vertex) of an orientation.
pub fn max_ownership(n: usize, oriented: &[(usize, usize, f64)]) -> usize {
    let mut count = vec![0usize; n];
    for &(owner, _, _) in oriented {
        count[owner] += 1;
    }
    count.into_iter().max().unwrap_or(0)
}

/// 2-colour a bipartite graph (BFS layering); returns `None` if an odd
/// cycle exists. Colours are `false`/`true`.
pub fn two_colour(g: &Graph) -> Option<Vec<bool>> {
    let n = g.len();
    let mut colour: Vec<Option<bool>> = vec![None; n];
    let mut queue = std::collections::VecDeque::new();
    for s in 0..n {
        if colour[s].is_some() {
            continue;
        }
        colour[s] = Some(false);
        queue.push_back(s);
        while let Some(u) = queue.pop_front() {
            let cu = colour[u].unwrap();
            for &(v, _) in g.neighbors(u) {
                match colour[v] {
                    None => {
                        colour[v] = Some(!cu);
                        queue.push_back(v);
                    }
                    Some(cv) if cv == cu => return None,
                    _ => {}
                }
            }
        }
    }
    Some(colour.into_iter().map(|c| c.unwrap()).collect())
}

/// The Theorem 3.13 ownership: in a bipartite graph, the `false`-coloured
/// side buys all its incident edges. Returns `None` on non-bipartite
/// input.
pub fn bipartite_orientation(g: &Graph) -> Option<Vec<(usize, usize, f64)>> {
    let colour = two_colour(g)?;
    Some(
        g.edges()
            .into_iter()
            .map(|(u, v, w)| if !colour[u] { (u, v, w) } else { (v, u, w) })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_has_degeneracy_one() {
        let g = Graph::from_edges(5, &[(0, 1, 1.0), (1, 2, 1.0), (1, 3, 1.0), (3, 4, 1.0)]);
        let (_, k) = degeneracy_ordering(&g);
        assert_eq!(k, 1);
        let o = bounded_outdegree_orientation(&g);
        assert_eq!(o.len(), 4);
        assert!(max_ownership(5, &o) <= 1);
    }

    #[test]
    fn complete_graph_degeneracy() {
        let g = Graph::complete(6, |_, _| 1.0);
        let (_, k) = degeneracy_ordering(&g);
        assert_eq!(k, 5);
        let o = bounded_outdegree_orientation(&g);
        assert!(max_ownership(6, &o) <= 5);
        assert_eq!(o.len(), 15);
    }

    #[test]
    fn cycle_degeneracy_two() {
        let g = Graph::from_edges(4, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (3, 0, 1.0)]);
        let (_, k) = degeneracy_ordering(&g);
        assert_eq!(k, 2);
        let o = bounded_outdegree_orientation(&g);
        assert!(max_ownership(4, &o) <= 2);
    }

    #[test]
    fn orientation_covers_every_edge_exactly_once() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let n = 30;
        let mut g = Graph::new(n);
        for u in 0..n {
            for v in (u + 1)..n {
                if rng.gen::<f64>() < 0.2 {
                    g.add_edge(u, v, 1.0);
                }
            }
        }
        let o = bounded_outdegree_orientation(&g);
        assert_eq!(o.len(), g.num_edges());
        let mut seen = std::collections::HashSet::new();
        for &(a, b, _) in &o {
            assert!(g.has_edge(a, b));
            assert!(seen.insert((a.min(b), a.max(b))));
        }
    }

    #[test]
    fn grid_two_colouring() {
        // 3x3 grid graph is bipartite
        let mut g = Graph::new(9);
        for r in 0..3 {
            for c in 0..3 {
                let u = r * 3 + c;
                if c + 1 < 3 {
                    g.add_edge(u, u + 1, 1.0);
                }
                if r + 1 < 3 {
                    g.add_edge(u, u + 3, 1.0);
                }
            }
        }
        let colour = two_colour(&g).unwrap();
        for (u, v, _) in g.edges() {
            assert_ne!(colour[u], colour[v]);
        }
        let o = bipartite_orientation(&g).unwrap();
        assert_eq!(o.len(), g.num_edges());
        // every owner has the same colour
        let owner_colours: std::collections::HashSet<bool> =
            o.iter().map(|&(a, _, _)| colour[a]).collect();
        assert_eq!(owner_colours.len(), 1);
    }

    #[test]
    fn odd_cycle_not_two_colourable() {
        let g = Graph::from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0), (2, 0, 1.0)]);
        assert!(two_colour(&g).is_none());
        assert!(bipartite_orientation(&g).is_none());
    }

    #[test]
    fn empty_graph_trivial() {
        let g = Graph::new(4);
        let (order, k) = degeneracy_ordering(&g);
        assert_eq!(order.len(), 4);
        assert_eq!(k, 0);
        assert!(bounded_outdegree_orientation(&g).is_empty());
    }

    #[test]
    fn ownership_bound_matches_degeneracy_random() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(23);
        for trial in 0..10 {
            let n = 20 + trial;
            let mut g = Graph::new(n);
            for u in 0..n {
                for v in (u + 1)..n {
                    if rng.gen::<f64>() < 0.3 {
                        g.add_edge(u, v, 1.0);
                    }
                }
            }
            let (_, k) = degeneracy_ordering(&g);
            let o = bounded_outdegree_orientation(&g);
            assert!(
                max_ownership(n, &o) <= k,
                "trial {trial}: ownership {} > degeneracy {k}",
                max_ownership(n, &o)
            );
        }
    }
}
