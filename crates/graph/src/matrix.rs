//! Flat row-major distance matrix.
//!
//! The previous APSP representation, `Vec<Vec<f64>>`, costs one heap
//! allocation per source and scatters rows across the heap; every
//! `d[u][v]` read chases a pointer. [`DistMatrix`] stores all n² entries
//! in a single allocation, so row access is one multiply and the whole
//! matrix walks sequentially in cache order.
//!
//! `Index<usize>` returns the row as a `&[f64]`, so existing `d[u][v]`
//! call sites compile unchanged against either representation.

/// A dense n×n matrix of shortest-path distances in one flat allocation.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DistMatrix {
    n: usize,
    data: Vec<f64>,
}

/// Arena recycling: the best-response hot path rents a matrix for each
/// rest-graph APSP instead of allocating n² doubles per evaluation.
/// `reset` shrinks to 0×0 (keeping capacity); renters call
/// [`DistMatrix::reshape`] before filling.
impl gncg_parallel::arena::Scratch for DistMatrix {
    fn reset(&mut self) {
        self.n = 0;
        self.data.clear();
    }
}

impl DistMatrix {
    /// An n×n matrix with every entry set to `value`.
    pub fn filled(n: usize, value: f64) -> Self {
        Self {
            n,
            data: vec![value; n * n],
        }
    }

    /// Resize to n×n reusing the backing buffer, with every entry set to
    /// `value`. Allocation-free once the buffer has grown to its steady
    ///-state size — the reuse half of arena-rented matrices (see the
    /// [`gncg_parallel::arena::Scratch`] impl below).
    pub fn reshape(&mut self, n: usize, value: f64) {
        self.n = n;
        self.data.clear();
        self.data.resize(n * n, value);
    }

    /// Adopt a flat row-major buffer of length n².
    pub fn from_flat(n: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), n * n, "flat buffer must have n^2 entries");
        Self { n, data }
    }

    /// Build from ragged rows (the legacy `Vec<Vec<f64>>` shape).
    pub fn from_rows(rows: Vec<Vec<f64>>) -> Self {
        let n = rows.len();
        let mut data = Vec::with_capacity(n * n);
        for row in &rows {
            assert_eq!(row.len(), n, "rows must form a square matrix");
            data.extend_from_slice(row);
        }
        Self { n, data }
    }

    /// Matrix dimension n (the matrix is n×n).
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// True iff the matrix has zero rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Row `u` as a contiguous slice.
    #[inline]
    pub fn row(&self, u: usize) -> &[f64] {
        &self.data[u * self.n..(u + 1) * self.n]
    }

    /// Mutable row `u`.
    #[inline]
    pub fn row_mut(&mut self, u: usize) -> &mut [f64] {
        &mut self.data[u * self.n..(u + 1) * self.n]
    }

    /// Entry `d[u][v]`.
    #[inline]
    pub fn get(&self, u: usize, v: usize) -> f64 {
        self.data[u * self.n + v]
    }

    /// Set entry `d[u][v]`.
    #[inline]
    pub fn set(&mut self, u: usize, v: usize, value: f64) {
        self.data[u * self.n + v] = value;
    }

    /// The whole flat buffer (row-major).
    #[inline]
    pub fn as_flat(&self) -> &[f64] {
        &self.data
    }

    /// Sum of row `u` — the distance cost `d_G(u, P)` when the matrix
    /// holds shortest-path distances.
    #[inline]
    pub fn row_sum(&self, u: usize) -> f64 {
        self.row(u).iter().sum()
    }

    /// Copy out as ragged rows (legacy interchange shape, used by the
    /// property-test oracle).
    pub fn to_rows(&self) -> Vec<Vec<f64>> {
        (0..self.n).map(|u| self.row(u).to_vec()).collect()
    }

    /// Fill the listed rows in parallel, each via `f(scratch, u, row)`,
    /// with one persistent `scratch` per worker thread.
    ///
    /// The rows in `rows` must be pairwise distinct: each is handed out
    /// to exactly one closure invocation as `&mut [f64]`. Duplicates
    /// would alias mutable slices across threads.
    pub fn par_fill_rows_with<S, Init, F>(&mut self, rows: &[usize], init: Init, f: F)
    where
        Init: Fn() -> S + Sync,
        F: Fn(&mut S, usize, &mut [f64]) + Sync,
    {
        let n = self.n;
        debug_assert!(
            {
                let mut seen = vec![false; n];
                rows.iter().all(|&u| !std::mem::replace(&mut seen[u], true))
            },
            "rows passed to par_fill_rows_with must be distinct"
        );
        let ptr = RowsPtr(self.data.as_mut_ptr());
        let ptr = &ptr;
        gncg_parallel::parallel_for_with(rows.len(), init, move |scratch, i| {
            let u = rows[i];
            // SAFETY: rows are distinct (caller contract), so each row
            // slice is written by exactly one closure invocation, and
            // u < n keeps the slice in bounds.
            let row = unsafe { std::slice::from_raw_parts_mut(ptr.0.add(u * n), n) };
            f(scratch, u, row);
        });
    }
}

/// Raw pointer wrapper so the parallel closure can carve disjoint row
/// slices. Soundness argument lives at the single use site above.
struct RowsPtr(*mut f64);
unsafe impl Send for RowsPtr {}
unsafe impl Sync for RowsPtr {}

impl std::ops::Index<usize> for DistMatrix {
    type Output = [f64];

    #[inline]
    fn index(&self, u: usize) -> &[f64] {
        self.row(u)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexing_matches_rows() {
        let m = DistMatrix::from_rows(vec![vec![0.0, 1.0], vec![1.0, 0.0]]);
        assert_eq!(m[0][1], 1.0);
        assert_eq!(m.get(1, 0), 1.0);
        assert_eq!(m.row(1), &[1.0, 0.0]);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn from_flat_roundtrip() {
        let m = DistMatrix::from_flat(2, vec![0.0, 3.0, 3.0, 0.0]);
        assert_eq!(m.to_rows(), vec![vec![0.0, 3.0], vec![3.0, 0.0]]);
        assert_eq!(m.as_flat(), &[0.0, 3.0, 3.0, 0.0]);
    }

    #[test]
    fn row_sum() {
        let m = DistMatrix::from_rows(vec![vec![0.0, 2.0, 4.0]; 3]);
        assert_eq!(m.row_sum(1), 6.0);
    }

    #[test]
    fn set_and_fill() {
        let mut m = DistMatrix::filled(3, f64::INFINITY);
        assert!(m.get(2, 2).is_infinite());
        m.set(2, 2, 0.0);
        assert_eq!(m[2][2], 0.0);
        m.row_mut(0).fill(1.5);
        assert_eq!(m.row(0), &[1.5, 1.5, 1.5]);
    }

    #[test]
    fn par_fill_rows_writes_disjoint_rows() {
        let n = 64;
        let mut m = DistMatrix::filled(n, -1.0);
        let rows: Vec<usize> = (0..n).collect();
        m.par_fill_rows_with(
            &rows,
            || 0usize,
            |_, u, row| {
                for (v, x) in row.iter_mut().enumerate() {
                    *x = (u * n + v) as f64;
                }
            },
        );
        for u in 0..n {
            for v in 0..n {
                assert_eq!(m.get(u, v), (u * n + v) as f64);
            }
        }
    }

    #[test]
    fn par_fill_subset_leaves_other_rows() {
        let mut m = DistMatrix::filled(8, 7.0);
        m.par_fill_rows_with(&[1, 5], || (), |(), u, row| row.fill(u as f64));
        assert_eq!(m.row(1), &[1.0; 8]);
        assert_eq!(m.row(5), &[5.0; 8]);
        assert_eq!(m.row(0), &[7.0; 8]);
        assert_eq!(m.row(7), &[7.0; 8]);
    }

    #[test]
    #[should_panic(expected = "square")]
    fn ragged_rows_rejected() {
        DistMatrix::from_rows(vec![vec![0.0], vec![0.0, 1.0]]);
    }
}
