//! All-pairs shortest paths, parallel over sources.
//!
//! The game engine evaluates social cost and per-agent distance cost via
//! APSP; on n-point instances this is n independent Dijkstra runs, which
//! we self-schedule across threads with per-worker persistent scratch.
//! The hot path snapshots the graph into [`Csr`] form first: the frozen
//! layout scans neighbour lists sequentially instead of chasing
//! `Vec<Vec<…>>` pointers, and results land directly in the rows of a
//! flat [`DistMatrix`].

use crate::csr::{Csr, DijkstraScratch};
use crate::{dijkstra, DistMatrix, Graph};

/// Full distance matrix `d[u][v]`; `INFINITY` marks disconnected pairs.
///
/// Entry-for-entry identical to [`all_pairs_rows`] (same Dijkstra, same
/// tie-breaks); only the storage layout and scratch reuse differ.
pub fn all_pairs(g: &Graph) -> DistMatrix {
    Csr::from_graph(g).all_pairs()
}

/// Legacy ragged-rows APSP via per-source adjacency-list Dijkstra.
///
/// Retained as the property-test oracle for [`all_pairs`]; prefer
/// [`all_pairs`] everywhere else.
pub fn all_pairs_rows(g: &Graph) -> Vec<Vec<f64>> {
    gncg_parallel::parallel_map(g.len(), |u| dijkstra::distances(g, u))
}

/// Distance-cost vector `d_G(u, P)` for every agent `u` (row sums of the
/// APSP matrix) without materializing the matrix.
pub fn distance_sums(g: &Graph) -> Vec<f64> {
    distance_aggregates(g, |row| row.iter().sum())
}

/// Per-source aggregate `f(d_G(u, ·))` for every agent `u` without
/// materializing the matrix — the cost-model seam behind
/// [`distance_sums`] (`f` = row sum) and the max-distance objective
/// (`f` = row maximum). `f` sees the full row including the zero
/// self-distance `d[u][u]`, exactly as [`distance_sums`] always did.
pub fn distance_aggregates<F>(g: &Graph, f: F) -> Vec<f64>
where
    F: Fn(&[f64]) -> f64 + Sync,
{
    let _span = gncg_trace::span("graph.apsp");
    let csr = Csr::from_graph(g);
    let n = csr.len();
    gncg_parallel::parallel_map_with(
        n,
        || (DijkstraScratch::default(), vec![f64::INFINITY; n]),
        |(scratch, row), u| {
            csr.dijkstra_into_slice(u, row, scratch);
            f(row)
        },
    )
}

/// Sum of all pairwise shortest-path distances Σ_u Σ_v d_G(u,v)
/// (each unordered pair counted twice, matching the paper's
/// Σ_{u∈P} d_G(u, P) convention).
pub fn total_distance(g: &Graph) -> f64 {
    total_row_aggregate(g, |row| row.iter().sum::<f64>())
}

/// `Σ_u f(d_G(u, ·))` without materializing the matrix — the total
/// behind [`total_distance`] (`f` = row sum) and the max-distance
/// social cost (`f` = row maximum, i.e. Σ_u ecc(u)).
pub fn total_row_aggregate<F>(g: &Graph, f: F) -> f64
where
    F: Fn(&[f64]) -> f64 + Sync,
{
    let _span = gncg_trace::span("graph.apsp");
    let csr = Csr::from_graph(g);
    let n = csr.len();
    gncg_parallel::parallel_reduce_with(
        n,
        || (DijkstraScratch::default(), vec![f64::INFINITY; n]),
        || 0.0,
        |(scratch, row), acc, u| {
            csr.dijkstra_into_slice(u, row, scratch);
            acc + f(row)
        },
        |a, b| a + b,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph(n: usize) -> Graph {
        let edges: Vec<(usize, usize, f64)> = (0..n - 1).map(|i| (i, i + 1, 1.0)).collect();
        Graph::from_edges(n, &edges)
    }

    #[test]
    fn all_pairs_path() {
        let g = path_graph(5);
        let d = all_pairs(&g);
        for u in 0..5 {
            for v in 0..5 {
                assert_eq!(d[u][v], (u as f64 - v as f64).abs());
            }
        }
    }

    #[test]
    fn all_pairs_symmetric() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        let n = 40;
        let mut g = path_graph(n);
        for _ in 0..80 {
            let u = rng.gen_range(0..n);
            let v = rng.gen_range(0..n);
            if u != v {
                g.add_edge(u, v, rng.gen::<f64>() * 3.0);
            }
        }
        let d = all_pairs(&g);
        for u in 0..n {
            assert_eq!(d[u][u], 0.0);
            for v in 0..n {
                assert!((d[u][v] - d[v][u]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn distance_sums_match_matrix_rows() {
        let g = path_graph(20);
        let m = all_pairs(&g);
        let s = distance_sums(&g);
        for u in 0..20 {
            let row: f64 = m[u].iter().sum();
            assert!((s[u] - row).abs() < 1e-9);
        }
    }

    #[test]
    fn total_distance_counts_ordered_pairs() {
        // path 0-1 with weight 2: total over ordered pairs = 4
        let g = Graph::from_edges(2, &[(0, 1, 2.0)]);
        assert!((total_distance(&g) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn total_distance_disconnected_is_infinite() {
        let g = Graph::new(3);
        assert!(total_distance(&g).is_infinite());
    }

    #[test]
    fn row_aggregates_generalize_sums_bit_exactly() {
        let g = path_graph(25);
        let via_sums = distance_sums(&g);
        let via_agg = distance_aggregates(&g, |row| row.iter().sum());
        for (a, b) in via_sums.iter().zip(&via_agg) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(
            total_distance(&g).to_bits(),
            total_row_aggregate(&g, |row| row.iter().sum::<f64>()).to_bits()
        );
    }

    #[test]
    fn max_row_aggregate_is_eccentricity() {
        let g = path_graph(6); // eccentricities 5,4,3,3,4,5
        let ecc = distance_aggregates(&g, |row| row.iter().fold(0.0, |a: f64, &d| a.max(d)));
        assert_eq!(ecc, vec![5.0, 4.0, 3.0, 3.0, 4.0, 5.0]);
        assert_eq!(
            total_row_aggregate(&g, |row| row.iter().fold(0.0, |a: f64, &d| a.max(d))),
            24.0
        );
    }

    #[test]
    fn parallel_matches_sequential() {
        let g = path_graph(200);
        let par = all_pairs(&g);
        let seq: Vec<Vec<f64>> = (0..200).map(|u| dijkstra::distances(&g, u)).collect();
        assert_eq!(par, DistMatrix::from_rows(seq));
    }

    #[test]
    fn flat_matrix_matches_legacy_rows_on_random_graphs() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(23);
        for _ in 0..5 {
            let n = rng.gen_range(2..50);
            let mut g = path_graph(n.max(2));
            for _ in 0..3 * n {
                let u = rng.gen_range(0..n.max(2));
                let v = rng.gen_range(0..n.max(2));
                if u != v {
                    g.add_edge(u, v, 0.05 + rng.gen::<f64>() * 4.0);
                }
            }
            assert_eq!(all_pairs(&g).to_rows(), all_pairs_rows(&g));
        }
    }
}
