//! All-pairs shortest paths, parallel over sources.
//!
//! The game engine evaluates social cost and per-agent distance cost via
//! APSP; on n-point instances this is n independent Dijkstra runs, which
//! we self-schedule across threads with `gncg_parallel::parallel_map`.

use crate::{dijkstra, Graph};

/// Full distance matrix `d[u][v]`; `INFINITY` marks disconnected pairs.
pub fn all_pairs(g: &Graph) -> Vec<Vec<f64>> {
    gncg_parallel::parallel_map(g.len(), |u| dijkstra::distances(g, u))
}

/// Distance-cost vector `d_G(u, P)` for every agent `u` (row sums of the
/// APSP matrix) without materializing the matrix.
pub fn distance_sums(g: &Graph) -> Vec<f64> {
    gncg_parallel::parallel_map(g.len(), |u| dijkstra::distance_sum(g, u))
}

/// Sum of all pairwise shortest-path distances Σ_u Σ_v d_G(u,v)
/// (each unordered pair counted twice, matching the paper's
/// Σ_{u∈P} d_G(u, P) convention).
pub fn total_distance(g: &Graph) -> f64 {
    gncg_parallel::parallel_reduce(
        g.len(),
        || 0.0,
        |acc, u| acc + dijkstra::distance_sum(g, u),
        |a, b| a + b,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph(n: usize) -> Graph {
        let edges: Vec<(usize, usize, f64)> =
            (0..n - 1).map(|i| (i, i + 1, 1.0)).collect();
        Graph::from_edges(n, &edges)
    }

    #[test]
    fn all_pairs_path() {
        let g = path_graph(5);
        let d = all_pairs(&g);
        for u in 0..5 {
            for v in 0..5 {
                assert_eq!(d[u][v], (u as f64 - v as f64).abs());
            }
        }
    }

    #[test]
    fn all_pairs_symmetric() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        let n = 40;
        let mut g = path_graph(n);
        for _ in 0..80 {
            let u = rng.gen_range(0..n);
            let v = rng.gen_range(0..n);
            if u != v {
                g.add_edge(u, v, rng.gen::<f64>() * 3.0);
            }
        }
        let d = all_pairs(&g);
        for u in 0..n {
            assert_eq!(d[u][u], 0.0);
            for v in 0..n {
                assert!((d[u][v] - d[v][u]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn distance_sums_match_matrix_rows() {
        let g = path_graph(20);
        let m = all_pairs(&g);
        let s = distance_sums(&g);
        for u in 0..20 {
            let row: f64 = m[u].iter().sum();
            assert!((s[u] - row).abs() < 1e-9);
        }
    }

    #[test]
    fn total_distance_counts_ordered_pairs() {
        // path 0-1 with weight 2: total over ordered pairs = 4
        let g = Graph::from_edges(2, &[(0, 1, 2.0)]);
        assert!((total_distance(&g) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn total_distance_disconnected_is_infinite() {
        let g = Graph::new(3);
        assert!(total_distance(&g).is_infinite());
    }

    #[test]
    fn parallel_matches_sequential() {
        let g = path_graph(200);
        let par = all_pairs(&g);
        let seq: Vec<Vec<f64>> = (0..200).map(|u| dijkstra::distances(&g, u)).collect();
        assert_eq!(par, seq);
    }
}
