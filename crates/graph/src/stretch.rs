//! Spanner stretch certification.
//!
//! A network `S` is a *t-spanner* of the metric `w` when
//! `d_S(u,v) ≤ t · w(u,v)` for every pair. The paper's guarantees are
//! parameterized by the spanner's `(k, t)`; we *measure* both on concrete
//! instances instead of citing construction-time constants, so every
//! claim in EXPERIMENTS.md is certified against the actual network.

use crate::{apsp, Graph};

/// Measured stretch of `g` w.r.t. the dense base metric `base(u, v)`:
/// `max_{u≠v} d_g(u,v) / base(u,v)` over pairs with `base(u,v) > 0`.
///
/// Returns `INFINITY` when `g` is disconnected, and 1.0 on single-vertex
/// or fully co-located inputs (no pair constrains the stretch).
pub fn stretch_vs_metric(g: &Graph, base: impl Fn(usize, usize) -> f64) -> f64 {
    let n = g.len();
    let d = apsp::all_pairs(g);
    let mut worst: f64 = 1.0;
    for u in 0..n {
        for v in (u + 1)..n {
            let b = base(u, v);
            if b > 0.0 {
                worst = worst.max(d[u][v] / b);
            } else if d[u][v].is_infinite() {
                return f64::INFINITY;
            }
        }
    }
    worst
}

/// Measured stretch of a geometric network over its point set.
pub fn stretch(g: &Graph, ps: &gncg_geometry::PointSet) -> f64 {
    assert_eq!(g.len(), ps.len());
    stretch_vs_metric(g, |u, v| ps.dist(u, v))
}

/// Verify that `g` is a t-spanner of the point set within tolerance.
pub fn is_t_spanner(g: &Graph, ps: &gncg_geometry::PointSet, t: f64) -> bool {
    stretch(g, ps) <= t * (1.0 + gncg_geometry::EPS)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gncg_geometry::{generators, Point, PointSet};

    #[test]
    fn complete_graph_has_stretch_one() {
        let ps = generators::uniform_unit_square(15, 1);
        let g = Graph::complete(15, |i, j| ps.dist(i, j));
        assert!((stretch(&g, &ps) - 1.0).abs() < 1e-9);
        assert!(is_t_spanner(&g, &ps, 1.0));
    }

    #[test]
    fn path_on_square_has_stretch() {
        let ps = PointSet::new(vec![
            Point::d2(0.0, 0.0),
            Point::d2(1.0, 0.0),
            Point::d2(1.0, 1.0),
            Point::d2(0.0, 1.0),
        ]);
        // path around three sides: stretch for pair (0,3) is 3/1 = 3
        let g = Graph::from_edges(4, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)]);
        assert!((stretch(&g, &ps) - 3.0).abs() < 1e-9);
        assert!(is_t_spanner(&g, &ps, 3.0));
        assert!(!is_t_spanner(&g, &ps, 2.9));
    }

    #[test]
    fn disconnected_stretch_is_infinite() {
        let ps = generators::line(4, 3.0);
        let g = Graph::from_edges(4, &[(0, 1, 1.0)]);
        assert!(stretch(&g, &ps).is_infinite());
    }

    #[test]
    fn mst_is_nminus1_spanner() {
        // Theorem 3.9's first claim: any Euclidean MST is an
        // (n-1)-spanner.
        for seed in 0..5 {
            let ps = generators::uniform_unit_square(20, seed);
            let mst = crate::mst::euclidean_mst(&ps);
            let s = stretch(&mst, &ps);
            assert!(s <= 19.0 + 1e-9, "seed {seed}: stretch {s}");
        }
    }

    #[test]
    fn colocated_points_do_not_blow_up() {
        let ps = generators::triangle_clusters(2, 0.0);
        let mst = crate::mst::euclidean_mst(&ps);
        let s = stretch(&mst, &ps);
        assert!(s.is_finite());
    }
}
