//! Weighted undirected graphs and the shortest-path / spanning-tree
//! machinery the GNCG needs.
//!
//! * [`Graph`] — adjacency-list weighted graph over vertices `0..n`,
//! * [`dijkstra`] — single-source shortest paths (binary heap) with a
//!   reusable [`dijkstra::DijkstraWorkspace`],
//! * [`apsp`] — all-pairs shortest paths into a flat [`DistMatrix`],
//!   parallel over sources with per-worker scratch,
//! * [`mst`] — Prim's algorithm, O(n²), on arbitrary dense metrics,
//! * [`orientation`] — degeneracy ordering and bounded out-degree edge
//!   orientation: the paper's *k-distributable* ownership assignment,
//! * [`components`] — connectivity,
//! * [`stretch`] — spanner stretch certification.

pub mod apsp;
pub mod components;
pub mod csr;
pub mod delta;
pub mod dijkstra;
pub mod graph;
pub mod heap4;
pub mod matrix;
pub mod mst;
pub mod orientation;
pub mod stretch;

pub use graph::Graph;
pub use matrix::DistMatrix;
