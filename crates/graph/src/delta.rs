//! Dynamic single-source shortest-path kernels: exact row *repair*
//! after edge insertions, exact "what-if" Dijkstra under edge
//! modifications, and an exact validity test for edge removals.
//!
//! These kernels let [`crate::csr::Csr`]-based evaluation avoid full
//! row rebuilds after single-edge deltas. Every routine here is
//! **bit-identical** to a fresh [`crate::csr::Csr::dijkstra_into_slice`]
//! run on the mutated graph — not merely "close". The argument, used
//! throughout this crate, is:
//!
//! 1. IEEE-754 round-to-nearest addition is *monotone*: `a ≤ a'` and
//!    `b ≤ b'` imply `fl(a+b) ≤ fl(a'+b')`. Hence the left-fold of
//!    edge weights along a path is monotone in every prefix value.
//! 2. Therefore Dijkstra's output row is exactly
//!    `row[v] = min over all paths π: source↝v of fold(π)` — a
//!    well-defined quantity independent of visit order, tie-breaks,
//!    or relaxation schedule. (Walks reduce to paths: deleting a
//!    cycle from a walk never increases its fold, weights being
//!    non-negative.)
//! 3. Any relaxation process that (a) only ever assigns fold values
//!    of actual paths and (b) runs to a fixpoint where no edge can
//!    relax, computes the same min — and is therefore bit-identical
//!    to a fresh Dijkstra.
//!
//! [`repair_insertions`] is such a process (it seeds from the old
//! row, whose entries are folds of paths that still exist in the
//! grown graph). [`removal_keeps_row`] exploits point 2 directly: if
//! no shortest-path fold can cross the removed edge, the min over
//! edge-avoiding paths equals the min over all paths, bitwise.

use crate::csr::{pack_key, Csr};
use crate::heap4::QuadHeap;

// The queues below use the same packed `(distance bits, node id)`
// integer keys as the Dijkstra kernels in [`crate::csr`] /
// [`crate::dijkstra`]: smallest distance first, ties broken by
// smallest node id. The settled-pop and relaxation tallies recorded
// here count work that is schedule-independent (each node settles at
// most once, at its exact min-over-path-folds distance), so heap
// shape and key encoding cannot perturb the deterministic trace
// counters.

/// Repairs a shortest-path row in place after edge *insertions*.
///
/// `csr` must be the CSR of the **new** graph (insertions already
/// applied); `row` must hold the exact distance row of the old graph
/// (before the insertions) from the row's source; `inserted` lists
/// the new undirected edges `(a, b, w)`.
///
/// Distances only decrease under insertion, and any improvement
/// cascades from an endpoint of a new edge, so the repair seeds a
/// heap with the endpoints the new edges improve and runs the
/// standard lazy-deletion relaxation loop from there. The result is
/// bit-identical to a fresh Dijkstra on the new graph (see module
/// docs); the cost is proportional to the region whose distances
/// actually changed.
pub fn repair_insertions(csr: &Csr, row: &mut [f64], inserted: &[(usize, usize, f64)]) {
    debug_assert_eq!(row.len(), csr.len());
    let mut heap = gncg_parallel::arena::rent::<QuadHeap>();
    let mut pops = 0u64;
    let mut relaxed = 0u64;
    for &(a, b, w) in inserted {
        let via_a = row[a] + w;
        if via_a < row[b] {
            row[b] = via_a;
            heap.push(pack_key(via_a.to_bits(), b as u32));
        }
        let via_b = row[b] + w;
        if via_b < row[a] {
            row[a] = via_b;
            heap.push(pack_key(via_b.to_bits(), a as u32));
        }
    }
    while let Some(key) = heap.pop() {
        let u = key as u32 as usize;
        let dist = f64::from_bits((key >> 32) as u64);
        if dist > row[u] {
            continue; // stale entry: a shorter fold already landed
        }
        pops += 1;
        let (targets, weights) = csr.neighbors(u);
        for (&t, &w) in targets.iter().zip(weights) {
            relaxed += 1;
            let v = t as usize;
            let nd = dist + w;
            if nd < row[v] {
                row[v] = nd;
                heap.push(pack_key(nd.to_bits(), t));
            }
        }
    }
    gncg_trace::record_dijkstra(pops, relaxed);
}

/// Returns `true` when removing the undirected edges in `removed`
/// (given as `(a, b, w)`) provably leaves the exact row `row`
/// unchanged, so the caller may keep it without any recomputation.
///
/// The test is that no removed edge is *tight* in either direction:
/// `fl(row[a] + w) > row[b]` and `fl(row[b] + w) > row[a]`, both as
/// strict `f64` comparisons. When it holds, any path crossing the
/// edge (say `a → b`) folds to at least `fl(row[a] + w) > row[b]`
/// (monotonicity, with the prefix fold to `a` being at least the min
/// `row[a]`), so replacing the crossing by a shortest path to `b`
/// yields an edge-avoiding walk with a fold no larger — the min over
/// edge-avoiding paths equals the full min, bitwise, for every
/// target. No epsilon slack is needed: the argument is exact in
/// float arithmetic. Ties (`==`) conservatively return `false`, as
/// do removals touching unreachable vertices (`∞ + w > ∞` is false).
pub fn removal_keeps_row(row: &[f64], removed: &[(usize, usize, f64)]) -> bool {
    removed
        .iter()
        .all(|&(a, b, w)| row[a] + w > row[b] && row[b] + w > row[a])
}

/// Full Dijkstra from `source` into `row`, honoring edge
/// modifications *without* rebuilding the CSR: every arc between the
/// endpoints of an edge in `removed` is skipped, and the undirected
/// edges in `added` (`(a, b, w)`) are relaxed alongside the CSR
/// adjacency of their endpoints.
///
/// This is the "what-if" kernel for probing single-edge deltas
/// (drop / add / swap) against a fixed CSR snapshot: bit-identical
/// to building the modified graph and running a fresh Dijkstra on
/// it, by the min-over-path-folds argument in the module docs. The
/// caller must ensure `added` edges do not duplicate CSR edges and
/// `removed` pairs are distinct (standard for simple graphs).
pub fn dijkstra_modified(
    csr: &Csr,
    source: usize,
    row: &mut [f64],
    removed: &[(usize, usize)],
    added: &[(usize, usize, f64)],
) {
    let n = csr.len();
    debug_assert_eq!(row.len(), n);
    row.fill(f64::INFINITY);
    row[source] = 0.0;
    let mut heap = gncg_parallel::arena::rent::<QuadHeap>();
    heap.push(pack_key(0.0f64.to_bits(), source as u32));
    let mut pops = 0u64;
    let mut relaxed = 0u64;
    while let Some(key) = heap.pop() {
        let u = key as u32 as usize;
        let dist = f64::from_bits((key >> 32) as u64);
        if dist > row[u] {
            continue; // stale entry: the node already settled closer
        }
        pops += 1;
        let (targets, weights) = csr.neighbors(u);
        'arcs: for (&t, &w) in targets.iter().zip(weights) {
            let v = t as usize;
            for &(ra, rb) in removed {
                if (u == ra && v == rb) || (u == rb && v == ra) {
                    continue 'arcs;
                }
            }
            relaxed += 1;
            let nd = dist + w;
            if nd < row[v] {
                row[v] = nd;
                heap.push(pack_key(nd.to_bits(), t));
            }
        }
        for &(a, b, w) in added {
            let v = if a == u {
                b
            } else if b == u {
                a
            } else {
                continue;
            };
            relaxed += 1;
            let nd = dist + w;
            if nd < row[v] {
                row[v] = nd;
                heap.push(pack_key(nd.to_bits(), v as u32));
            }
        }
    }
    gncg_trace::record_dijkstra(pops, relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::DijkstraScratch;
    use crate::Graph;

    /// Tiny deterministic LCG so the tests need no external RNG.
    struct Lcg(u64);

    impl Lcg {
        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0 >> 11
        }

        fn unit(&mut self) -> f64 {
            (self.next_u64() % (1 << 24)) as f64 / (1 << 24) as f64
        }

        fn below(&mut self, bound: usize) -> usize {
            (self.next_u64() % bound as u64) as usize
        }
    }

    fn random_graph(n: usize, extra: usize, rng: &mut Lcg) -> Graph {
        let mut g = Graph::new(n);
        // Random spanning tree so most rows are finite.
        for v in 1..n {
            let u = rng.below(v);
            g.add_edge(u, v, 0.1 + rng.unit());
        }
        for _ in 0..extra {
            let a = rng.below(n);
            let b = rng.below(n);
            if a != b {
                g.add_edge(a, b, 0.1 + rng.unit());
            }
        }
        g
    }

    fn fresh_row(g: &Graph, source: usize) -> Vec<f64> {
        let csr = Csr::from_graph(g);
        let mut row = vec![0.0; g.len()];
        let mut scratch = DijkstraScratch::default();
        csr.dijkstra_into_slice(source, &mut row, &mut scratch);
        row
    }

    #[test]
    fn insertion_repair_matches_fresh_dijkstra_bitwise() {
        let mut rng = Lcg(0x5eed);
        for case in 0..60 {
            let n = 4 + (case % 29);
            let mut g = random_graph(n, case % 7, &mut rng);
            let source = rng.below(n);
            let mut row = fresh_row(&g, source);
            // Insert a batch of fresh edges.
            let mut inserted = Vec::new();
            for _ in 0..1 + case % 3 {
                let a = rng.below(n);
                let b = rng.below(n);
                let w = 0.05 + rng.unit();
                // `add_edge` on an existing edge *updates* its
                // weight, so only genuinely fresh pairs qualify.
                if a != b && !g.has_edge(a, b) {
                    g.add_edge(a, b, w);
                    inserted.push((a, b, w));
                }
            }
            let csr = Csr::from_graph(&g);
            repair_insertions(&csr, &mut row, &inserted);
            let expect = fresh_row(&g, source);
            assert_eq!(
                row.iter().map(|d| d.to_bits()).collect::<Vec<_>>(),
                expect.iter().map(|d| d.to_bits()).collect::<Vec<_>>(),
                "case {case}: repaired row diverged from fresh Dijkstra"
            );
        }
    }

    #[test]
    fn insertion_repair_handles_disconnected_components() {
        // Two components; the inserted edge bridges them, so the
        // previously-infinite half of the row must be fully repaired.
        let mut g = Graph::new(6);
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 2, 2.0);
        g.add_edge(3, 4, 1.5);
        g.add_edge(4, 5, 0.5);
        let mut row = fresh_row(&g, 0);
        assert!(row[3].is_infinite());
        assert!(g.add_edge(2, 3, 0.25));
        let csr = Csr::from_graph(&g);
        repair_insertions(&csr, &mut row, &[(2, 3, 0.25)]);
        let expect = fresh_row(&g, 0);
        assert_eq!(
            row.iter().map(|d| d.to_bits()).collect::<Vec<_>>(),
            expect.iter().map(|d| d.to_bits()).collect::<Vec<_>>(),
        );
    }

    #[test]
    fn removal_keeps_row_is_sound() {
        // Whenever the test says "keep", the fresh row after removal
        // must be bit-identical to the kept row.
        let mut rng = Lcg(0xde17a);
        let mut kept = 0usize;
        for case in 0..80 {
            let n = 4 + (case % 23);
            let mut g = random_graph(n, 2 + case % 9, &mut rng);
            let source = rng.below(n);
            let row = fresh_row(&g, source);
            let edges = g.edges();
            if edges.is_empty() {
                continue;
            }
            let (a, b, w) = edges[rng.below(edges.len())];
            if removal_keeps_row(&row, &[(a, b, w)]) {
                kept += 1;
                g.remove_edge(a, b);
                let expect = fresh_row(&g, source);
                assert_eq!(
                    row.iter().map(|d| d.to_bits()).collect::<Vec<_>>(),
                    expect.iter().map(|d| d.to_bits()).collect::<Vec<_>>(),
                    "case {case}: removal of slack edge ({a},{b}) changed the row"
                );
            }
        }
        assert!(kept > 0, "sweep never exercised the keep branch");
    }

    #[test]
    fn removal_is_conservative_on_tree_edges() {
        // Every tree edge is tight somewhere, so a path graph must
        // always invalidate.
        let mut g = Graph::new(4);
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 2, 1.0);
        g.add_edge(2, 3, 1.0);
        let row = fresh_row(&g, 0);
        assert!(!removal_keeps_row(&row, &[(1, 2, 1.0)]));
    }

    #[test]
    fn dijkstra_modified_matches_rebuilt_graph_bitwise() {
        let mut rng = Lcg(0xabcd);
        for case in 0..60 {
            let n = 4 + (case % 21);
            let g = random_graph(n, 3 + case % 5, &mut rng);
            let source = rng.below(n);
            let edges = g.edges();
            // Pick one edge to drop and one non-edge to add.
            let removed: Vec<(usize, usize)> = if edges.is_empty() {
                Vec::new()
            } else {
                let (a, b, _) = edges[rng.below(edges.len())];
                vec![(a, b)]
            };
            let mut added = Vec::new();
            for _ in 0..8 {
                let a = rng.below(n);
                let b = rng.below(n);
                if a != b && !g.has_edge(a, b) {
                    added.push((a, b, 0.05 + rng.unit()));
                    break;
                }
            }
            let csr = Csr::from_graph(&g);
            let mut row = vec![0.0; n];
            dijkstra_modified(&csr, source, &mut row, &removed, &added);

            let mut h = g.clone();
            for &(a, b) in &removed {
                h.remove_edge(a, b);
            }
            for &(a, b, w) in &added {
                assert!(h.add_edge(a, b, w));
            }
            let expect = fresh_row(&h, source);
            assert_eq!(
                row.iter().map(|d| d.to_bits()).collect::<Vec<_>>(),
                expect.iter().map(|d| d.to_bits()).collect::<Vec<_>>(),
                "case {case}: modified Dijkstra diverged from rebuilt graph"
            );
        }
    }
}
