//! Adjacency-list weighted undirected graph.

use gncg_json::{field, object, FromJson, JsonError, ToJson, Value};

/// An undirected graph on vertices `0..n` with non-negative edge weights.
///
/// Parallel edges are collapsed (an insert of an existing edge overwrites
/// its weight); self-loops are rejected. The representation is an
/// adjacency list sorted by neighbour, giving O(log deg) membership tests
/// and cache-friendly Dijkstra scans.
#[derive(Debug, Clone, PartialEq)]
pub struct Graph {
    n: usize,
    adj: Vec<Vec<(usize, f64)>>,
    num_edges: usize,
}

impl ToJson for Graph {
    fn to_json(&self) -> Value {
        object(vec![
            ("n", self.n.to_json()),
            ("adj", self.adj.to_json()),
            ("num_edges", self.num_edges.to_json()),
        ])
    }
}

impl FromJson for Graph {
    fn from_json(value: &Value) -> Result<Self, JsonError> {
        let n = usize::from_json(field(value, "n")?)?;
        let adj = Vec::<Vec<(usize, f64)>>::from_json(field(value, "adj")?)?;
        if n == 0 || adj.len() != n {
            return Err(JsonError::new("graph adjacency size mismatch"));
        }
        // Rebuild through the mutation API so invariants (sorted
        // adjacency, consistent edge count) hold regardless of input.
        let mut g = Graph::new(n);
        for (u, neighbors) in adj.iter().enumerate() {
            for &(v, w) in neighbors {
                if v >= n || u == v || !w.is_finite() || w < 0.0 {
                    return Err(JsonError::new("invalid edge in graph adjacency"));
                }
                g.add_edge(u, v, w);
            }
        }
        Ok(g)
    }
}

impl Graph {
    /// Empty graph on `n` vertices.
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "graph needs at least one vertex");
        Self {
            n,
            adj: vec![Vec::new(); n],
            num_edges: 0,
        }
    }

    /// Graph from an edge list `(u, v, w)`.
    pub fn from_edges(n: usize, edges: &[(usize, usize, f64)]) -> Self {
        let mut g = Self::new(n);
        for &(u, v, w) in edges {
            g.add_edge(u, v, w);
        }
        g
    }

    /// Number of vertices.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// True iff the graph has no vertices (never true by construction).
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Number of (undirected) edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Insert or update edge `{u, v}` with weight `w`. Returns `true` if
    /// the edge is new.
    pub fn add_edge(&mut self, u: usize, v: usize, w: f64) -> bool {
        assert!(u != v, "self-loops are not allowed ({u})");
        assert!(u < self.n && v < self.n, "vertex out of range");
        assert!(w >= 0.0 && w.is_finite(), "weights must be finite and >= 0");
        let fresh = Self::insert_half(&mut self.adj[u], v, w);
        Self::insert_half(&mut self.adj[v], u, w);
        if fresh {
            self.num_edges += 1;
        }
        fresh
    }

    fn insert_half(list: &mut Vec<(usize, f64)>, v: usize, w: f64) -> bool {
        match list.binary_search_by_key(&v, |&(x, _)| x) {
            Ok(pos) => {
                list[pos].1 = w;
                false
            }
            Err(pos) => {
                list.insert(pos, (v, w));
                true
            }
        }
    }

    /// Remove edge `{u, v}`. Returns `true` if it existed.
    pub fn remove_edge(&mut self, u: usize, v: usize) -> bool {
        assert!(u < self.n && v < self.n, "vertex out of range");
        let removed = match self.adj[u].binary_search_by_key(&v, |&(x, _)| x) {
            Ok(pos) => {
                self.adj[u].remove(pos);
                true
            }
            Err(_) => false,
        };
        if removed {
            if let Ok(pos) = self.adj[v].binary_search_by_key(&u, |&(x, _)| x) {
                self.adj[v].remove(pos);
            }
            self.num_edges -= 1;
        }
        removed
    }

    /// Weight of edge `{u, v}`, if present.
    #[inline]
    pub fn edge_weight(&self, u: usize, v: usize) -> Option<f64> {
        self.adj[u]
            .binary_search_by_key(&v, |&(x, _)| x)
            .ok()
            .map(|pos| self.adj[u][pos].1)
    }

    /// True iff edge `{u, v}` is present.
    #[inline]
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.edge_weight(u, v).is_some()
    }

    /// Neighbours of `u` with weights, sorted by neighbour index.
    #[inline]
    pub fn neighbors(&self, u: usize) -> &[(usize, f64)] {
        &self.adj[u]
    }

    /// Degree of `u`.
    #[inline]
    pub fn degree(&self, u: usize) -> usize {
        self.adj[u].len()
    }

    /// Maximum degree over all vertices.
    pub fn max_degree(&self) -> usize {
        (0..self.n).map(|u| self.degree(u)).max().unwrap_or(0)
    }

    /// All edges as `(u, v, w)` with `u < v`.
    pub fn edges(&self) -> Vec<(usize, usize, f64)> {
        let mut out = Vec::with_capacity(self.num_edges);
        for u in 0..self.n {
            for &(v, w) in &self.adj[u] {
                if u < v {
                    out.push((u, v, w));
                }
            }
        }
        out
    }

    /// Total edge weight Σ w(e).
    pub fn total_weight(&self) -> f64 {
        self.edges().iter().map(|&(_, _, w)| w).sum()
    }

    /// The complete graph on `n` vertices with weights from `weight(i, j)`.
    pub fn complete(n: usize, weight: impl Fn(usize, usize) -> f64) -> Self {
        let mut g = Self::new(n);
        for u in 0..n {
            for v in (u + 1)..n {
                g.add_edge(u, v, weight(u, v));
            }
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_query() {
        let mut g = Graph::new(4);
        assert!(g.add_edge(0, 1, 2.0));
        assert!(g.add_edge(1, 2, 3.0));
        assert!(!g.add_edge(0, 1, 5.0)); // update, not new
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.edge_weight(0, 1), Some(5.0));
        assert_eq!(g.edge_weight(1, 0), Some(5.0));
        assert_eq!(g.edge_weight(0, 3), None);
        assert!(g.has_edge(1, 2));
        assert!(!g.has_edge(0, 2));
    }

    #[test]
    fn remove_edge_both_directions() {
        let mut g = Graph::from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0)]);
        assert!(g.remove_edge(1, 0));
        assert!(!g.remove_edge(0, 1));
        assert_eq!(g.num_edges(), 1);
        assert!(!g.has_edge(0, 1));
        assert!(g.has_edge(1, 2));
    }

    #[test]
    fn neighbors_sorted() {
        let g = Graph::from_edges(5, &[(2, 4, 1.0), (2, 0, 1.0), (2, 3, 1.0), (2, 1, 1.0)]);
        let ns: Vec<usize> = g.neighbors(2).iter().map(|&(v, _)| v).collect();
        assert_eq!(ns, vec![0, 1, 3, 4]);
        assert_eq!(g.degree(2), 4);
        assert_eq!(g.max_degree(), 4);
    }

    #[test]
    fn edges_listing_unique() {
        let g = Graph::from_edges(3, &[(0, 1, 1.0), (1, 2, 2.0), (0, 2, 3.0)]);
        let es = g.edges();
        assert_eq!(es.len(), 3);
        assert!(es.iter().all(|&(u, v, _)| u < v));
        assert!((g.total_weight() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn complete_graph() {
        let g = Graph::complete(5, |i, j| (i + j) as f64);
        assert_eq!(g.num_edges(), 10);
        assert_eq!(g.edge_weight(2, 3), Some(5.0));
        assert_eq!(g.max_degree(), 4);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loop_rejected() {
        Graph::new(2).add_edge(1, 1, 1.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_rejected() {
        Graph::new(2).add_edge(0, 2, 1.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_weight_rejected() {
        Graph::new(2).add_edge(0, 1, f64::NAN);
    }

    #[test]
    fn zero_weight_allowed() {
        // co-located cluster points have distance-0 edges
        let mut g = Graph::new(2);
        g.add_edge(0, 1, 0.0);
        assert_eq!(g.edge_weight(0, 1), Some(0.0));
    }
}
