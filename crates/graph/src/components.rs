//! Connectivity queries.

use crate::Graph;

/// Component label per vertex (labels are `0..k` in order of first
/// appearance) and the number of components.
pub fn components(g: &Graph) -> (Vec<usize>, usize) {
    let n = g.len();
    let mut label = vec![usize::MAX; n];
    let mut next = 0;
    let mut stack = Vec::new();
    for s in 0..n {
        if label[s] != usize::MAX {
            continue;
        }
        label[s] = next;
        stack.push(s);
        while let Some(u) = stack.pop() {
            for &(v, _) in g.neighbors(u) {
                if label[v] == usize::MAX {
                    label[v] = next;
                    stack.push(v);
                }
            }
        }
        next += 1;
    }
    (label, next)
}

/// True iff the graph is connected.
pub fn is_connected(g: &Graph) -> bool {
    components(g).1 == 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_is_connected() {
        let g = Graph::from_edges(4, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)]);
        assert!(is_connected(&g));
        assert_eq!(components(&g).1, 1);
    }

    #[test]
    fn two_components() {
        let g = Graph::from_edges(5, &[(0, 1, 1.0), (2, 3, 1.0)]);
        let (label, k) = components(&g);
        assert_eq!(k, 3); // {0,1}, {2,3}, {4}
        assert_eq!(label[0], label[1]);
        assert_eq!(label[2], label[3]);
        assert_ne!(label[0], label[2]);
        assert_ne!(label[0], label[4]);
        assert!(!is_connected(&g));
    }

    #[test]
    fn singleton_graph_connected() {
        assert!(is_connected(&Graph::new(1)));
    }

    #[test]
    fn empty_edges_many_components() {
        let (_, k) = components(&Graph::new(7));
        assert_eq!(k, 7);
    }
}
