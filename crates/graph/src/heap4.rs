//! Flat 4-ary min-heap over packed `u128` keys.
//!
//! The Dijkstra kernels order their queues by `(distance bits, node
//! id)` — a total order with no ties between distinct entries, so the
//! pop sequence is the sorted extraction order of whatever was pushed,
//! independent of the heap's internal shape. That freedom lets us pick
//! the structure purely for constant factors: a 4-ary heap halves the
//! sift-down depth of a binary heap and keeps all four children of a
//! node in one or two cache lines, which is where the small-graph APSP
//! loops spend most of their queue time.
//!
//! Keys pack the ordering into a single integer (`primary << SHIFT |
//! secondary`), so every sift comparison is one `u128` compare — no
//! float semantics, no struct field juggling. Callers own the encoding;
//! this type only promises min-key-first pops with FIFO-free
//! determinism (equal keys cannot occur for distinct logical entries by
//! the callers' construction).

/// Growable 4-ary min-heap of packed `u128` keys.
#[derive(Debug, Default, Clone)]
pub struct QuadHeap {
    a: Vec<u128>,
}

/// Arena recycling: hot loops that need a bare queue (the delta-repair
/// kernels) rent one instead of allocating per call. A drained heap is
/// indistinguishable from a fresh one; `reset` clears any leftovers.
impl gncg_parallel::arena::Scratch for QuadHeap {
    fn reset(&mut self) {
        self.clear();
    }
}

impl QuadHeap {
    /// Empty heap with no reserved capacity.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of queued keys.
    #[inline]
    pub fn len(&self) -> usize {
        self.a.len()
    }

    /// True when no keys are queued.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.a.is_empty()
    }

    /// Drop all keys, keeping the backing buffer.
    #[inline]
    pub fn clear(&mut self) {
        self.a.clear();
    }

    /// Insert a key.
    #[inline]
    pub fn push(&mut self, key: u128) {
        let mut i = self.a.len();
        self.a.push(key);
        // sift up: parent of i is (i - 1) / 4
        // SAFETY: `i` starts at len - 1 and only moves to parents
        // (p < i), so every index stays below `a.len()`.
        while i > 0 {
            let p = (i - 1) >> 2;
            let pk = unsafe { *self.a.get_unchecked(p) };
            if pk <= key {
                break;
            }
            unsafe { *self.a.get_unchecked_mut(i) = pk };
            i = p;
        }
        unsafe { *self.a.get_unchecked_mut(i) = key };
    }

    /// Remove and return the smallest key.
    #[inline]
    pub fn pop(&mut self) -> Option<u128> {
        let top = *self.a.first()?;
        let last = self.a.pop().expect("non-empty");
        if !self.a.is_empty() {
            self.sift_down(last);
        }
        Some(top)
    }

    /// Place `key` at the root and restore the heap property.
    fn sift_down(&mut self, key: u128) {
        let n = self.a.len();
        let mut i = 0;
        // SAFETY: `first >= n` breaks before any child access, `end` is
        // clamped to n, and `i` only ever takes values of `c < end <= n`.
        loop {
            let first = (i << 2) + 1;
            if first >= n {
                break;
            }
            let end = (first + 4).min(n);
            // smallest of up to four children
            let mut c = first;
            let mut ck = unsafe { *self.a.get_unchecked(c) };
            for j in first + 1..end {
                let k = unsafe { *self.a.get_unchecked(j) };
                if k < ck {
                    c = j;
                    ck = k;
                }
            }
            if key <= ck {
                break;
            }
            unsafe { *self.a.get_unchecked_mut(i) = ck };
            i = c;
        }
        unsafe { *self.a.get_unchecked_mut(i) = key };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_sorted_order() {
        let mut h = QuadHeap::new();
        let keys: Vec<u128> = (0..257u128).map(|i| (i * 7919) % 1009).collect();
        for &k in &keys {
            h.push(k);
        }
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        let mut out = Vec::new();
        while let Some(k) = h.pop() {
            out.push(k);
        }
        assert_eq!(out, sorted);
        assert!(h.is_empty());
    }

    #[test]
    fn interleaved_push_pop_matches_binary_heap() {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let mut quad = QuadHeap::new();
        let mut bin = BinaryHeap::new();
        let mut x: u128 = 0x9e3779b97f4a7c15;
        for step in 0..4000u64 {
            x = x.wrapping_mul(0x2545f4914f6cdd1d).wrapping_add(0xb5);
            let k = x & 0xffff_ffff;
            quad.push(k);
            bin.push(Reverse(k));
            if step % 3 == 0 {
                assert_eq!(quad.pop(), bin.pop().map(|Reverse(k)| k));
            }
        }
        while let Some(k) = quad.pop() {
            assert_eq!(Some(k), bin.pop().map(|Reverse(k)| k));
        }
        assert!(bin.is_empty());
    }

    #[test]
    fn clear_resets_and_reuses() {
        let mut h = QuadHeap::new();
        h.push(5);
        h.push(1);
        h.clear();
        assert!(h.is_empty());
        h.push(3);
        assert_eq!(h.pop(), Some(3));
        assert_eq!(h.pop(), None);
    }
}
