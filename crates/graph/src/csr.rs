//! Compressed sparse row (CSR) graph view.
//!
//! The adjacency-list [`crate::Graph`] is convenient for the game
//! engine's incremental edits; the APSP-heavy kernels (γ certification
//! on large instances, the benchmark sweeps) prefer a frozen,
//! cache-friendly layout. [`Csr`] is an immutable snapshot with all
//! neighbour lists in two flat arrays, plus a Dijkstra that reuses
//! caller-provided scratch buffers to avoid per-source allocation.

use crate::{DistMatrix, Graph};

/// Immutable CSR snapshot of an undirected weighted graph.
#[derive(Debug, Clone)]
pub struct Csr {
    offsets: Vec<u32>,
    targets: Vec<u32>,
    weights: Vec<f64>,
}

/// Reusable scratch space for [`Csr::dijkstra_into`].
#[derive(Debug, Default)]
pub struct DijkstraScratch {
    heap: std::collections::BinaryHeap<HeapEntry>,
    done: Vec<bool>,
}

#[derive(Debug, PartialEq)]
struct HeapEntry {
    dist: f64,
    node: u32,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Csr {
    /// Snapshot an adjacency-list graph.
    pub fn from_graph(g: &Graph) -> Self {
        let n = g.len();
        assert!(n <= u32::MAX as usize, "graph too large for CSR u32 ids");
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::with_capacity(2 * g.num_edges());
        let mut weights = Vec::with_capacity(2 * g.num_edges());
        offsets.push(0u32);
        for u in 0..n {
            for &(v, w) in g.neighbors(u) {
                targets.push(v as u32);
                weights.push(w);
            }
            offsets.push(targets.len() as u32);
        }
        Self {
            offsets,
            targets,
            weights,
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// True iff the graph has zero vertices.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Neighbour slice of `u` as `(targets, weights)`.
    #[inline]
    pub fn neighbors(&self, u: usize) -> (&[u32], &[f64]) {
        let lo = self.offsets[u] as usize;
        let hi = self.offsets[u + 1] as usize;
        (&self.targets[lo..hi], &self.weights[lo..hi])
    }

    /// Snapshot `g` with vertex `skip` isolated: every edge incident to
    /// `skip` is dropped, all other vertices keep their ids. This is the
    /// "rest graph" `G − u` of the best-response evaluator, built without
    /// mutating or cloning the adjacency-list graph.
    pub fn from_graph_without_vertex(g: &Graph, skip: usize) -> Self {
        let n = g.len();
        assert!(n <= u32::MAX as usize, "graph too large for CSR u32 ids");
        assert!(skip < n);
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::with_capacity(2 * g.num_edges());
        let mut weights = Vec::with_capacity(2 * g.num_edges());
        offsets.push(0u32);
        for u in 0..n {
            if u != skip {
                for &(v, w) in g.neighbors(u) {
                    if v != skip {
                        targets.push(v as u32);
                        weights.push(w);
                    }
                }
            }
            offsets.push(targets.len() as u32);
        }
        Self {
            offsets,
            targets,
            weights,
        }
    }

    /// Dijkstra from `source` writing distances into `dist`
    /// (`f64::INFINITY` for unreachable), reusing `scratch`.
    pub fn dijkstra_into(&self, source: usize, dist: &mut Vec<f64>, scratch: &mut DijkstraScratch) {
        let n = self.len();
        dist.clear();
        dist.resize(n, f64::INFINITY);
        self.dijkstra_into_slice(source, dist, scratch);
    }

    /// Dijkstra writing into a caller-owned row of exactly `n` entries —
    /// the allocation-free kernel behind [`Csr::all_pairs`] and the
    /// incremental evaluation context's row refresh.
    pub fn dijkstra_into_slice(
        &self,
        source: usize,
        dist: &mut [f64],
        scratch: &mut DijkstraScratch,
    ) {
        let n = self.len();
        assert_eq!(dist.len(), n, "distance row must have n entries");
        dist.fill(f64::INFINITY);
        scratch.heap.clear();
        scratch.done.clear();
        scratch.done.resize(n, false);
        dist[source] = 0.0;
        scratch.heap.push(HeapEntry {
            dist: 0.0,
            node: source as u32,
        });
        // work tallies live in registers; one gated trace call per kernel
        // invocation keeps the off-path free of per-edge instrumentation
        let (mut pops, mut relaxed) = (0u64, 0u64);
        while let Some(HeapEntry { dist: d, node }) = scratch.heap.pop() {
            pops += 1;
            let u = node as usize;
            if scratch.done[u] {
                continue;
            }
            scratch.done[u] = true;
            let (ts, ws) = self.neighbors(u);
            for (&v, &w) in ts.iter().zip(ws) {
                let nd = d + w;
                let v = v as usize;
                if nd < dist[v] {
                    relaxed += 1;
                    dist[v] = nd;
                    scratch.heap.push(HeapEntry {
                        dist: nd,
                        node: v as u32,
                    });
                }
            }
        }
        gncg_trace::record_dijkstra(pops, relaxed);
    }

    /// Sum of distances from `source` (∞ if anything unreachable).
    pub fn distance_sum(&self, source: usize, scratch: &mut DijkstraScratch) -> f64 {
        let mut dist = Vec::new();
        self.dijkstra_into(source, &mut dist, scratch);
        dist.iter().sum()
    }

    /// Parallel APSP into a flat [`DistMatrix`], one persistent Dijkstra
    /// scratch per worker thread. Entry-for-entry identical to running
    /// [`crate::dijkstra::distances`] from every source.
    pub fn all_pairs(&self) -> DistMatrix {
        let _span = gncg_trace::span("graph.apsp");
        let n = self.len();
        let mut m = DistMatrix::filled(n, f64::INFINITY);
        let rows: Vec<usize> = (0..n).collect();
        m.par_fill_rows_with(&rows, DijkstraScratch::default, |scratch, u, row| {
            self.dijkstra_into_slice(u, row, scratch)
        });
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{apsp, dijkstra};

    fn random_graph(n: usize, seed: u64) -> Graph {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut g = Graph::new(n);
        for u in 0..n - 1 {
            g.add_edge(u, u + 1, 0.1 + rng.gen::<f64>());
        }
        for _ in 0..2 * n {
            let u = rng.gen_range(0..n);
            let v = rng.gen_range(0..n);
            if u != v {
                g.add_edge(u, v, 0.1 + rng.gen::<f64>() * 3.0);
            }
        }
        g
    }

    #[test]
    fn csr_matches_adjacency_dijkstra() {
        for seed in 0..5 {
            let g = random_graph(40, seed);
            let csr = Csr::from_graph(&g);
            let mut scratch = DijkstraScratch::default();
            let mut dist = Vec::new();
            for s in 0..g.len() {
                csr.dijkstra_into(s, &mut dist, &mut scratch);
                let reference = dijkstra::distances(&g, s);
                assert_eq!(dist, reference, "seed {seed} source {s}");
            }
        }
    }

    #[test]
    fn csr_apsp_matches() {
        let g = random_graph(30, 9);
        let csr = Csr::from_graph(&g);
        assert_eq!(csr.all_pairs(), apsp::all_pairs(&g));
    }

    #[test]
    fn disconnected_vertices_are_infinite() {
        let g = Graph::from_edges(4, &[(0, 1, 1.0)]);
        let csr = Csr::from_graph(&g);
        let mut scratch = DijkstraScratch::default();
        let mut dist = Vec::new();
        csr.dijkstra_into(0, &mut dist, &mut scratch);
        assert_eq!(dist[1], 1.0);
        assert!(dist[2].is_infinite() && dist[3].is_infinite());
        assert!(csr.distance_sum(0, &mut scratch).is_infinite());
    }

    #[test]
    fn scratch_reuse_is_clean() {
        let g1 = random_graph(20, 1);
        let g2 = random_graph(25, 2);
        let c1 = Csr::from_graph(&g1);
        let c2 = Csr::from_graph(&g2);
        let mut scratch = DijkstraScratch::default();
        let mut dist = Vec::new();
        c1.dijkstra_into(0, &mut dist, &mut scratch);
        c2.dijkstra_into(3, &mut dist, &mut scratch);
        assert_eq!(dist, dijkstra::distances(&g2, 3));
    }

    #[test]
    fn without_vertex_isolates_it() {
        for seed in 0..3 {
            let g = random_graph(25, seed + 40);
            for skip in [0, 7, 24] {
                let csr = Csr::from_graph_without_vertex(&g, skip);
                // reference: clone the graph and drop skip's edges
                let mut reduced = g.clone();
                let nbrs: Vec<usize> = reduced.neighbors(skip).iter().map(|&(v, _)| v).collect();
                for v in nbrs {
                    reduced.remove_edge(skip, v);
                }
                let reference = Csr::from_graph(&reduced);
                let mut s1 = DijkstraScratch::default();
                let mut s2 = DijkstraScratch::default();
                let mut d1 = Vec::new();
                let mut d2 = Vec::new();
                for s in 0..g.len() {
                    csr.dijkstra_into(s, &mut d1, &mut s1);
                    reference.dijkstra_into(s, &mut d2, &mut s2);
                    assert_eq!(d1, d2, "seed {seed} skip {skip} source {s}");
                }
            }
        }
    }

    #[test]
    fn slice_kernel_matches_vec_kernel() {
        let g = random_graph(30, 77);
        let csr = Csr::from_graph(&g);
        let mut scratch = DijkstraScratch::default();
        let mut vec_dist = Vec::new();
        let mut row = vec![0.0; g.len()];
        for s in 0..g.len() {
            csr.dijkstra_into(s, &mut vec_dist, &mut scratch);
            csr.dijkstra_into_slice(s, &mut row, &mut scratch);
            assert_eq!(row, vec_dist);
        }
    }

    #[test]
    fn neighbor_slices() {
        let g = Graph::from_edges(3, &[(0, 1, 1.0), (0, 2, 2.0)]);
        let csr = Csr::from_graph(&g);
        let (ts, ws) = csr.neighbors(0);
        assert_eq!(ts, &[1, 2]);
        assert_eq!(ws, &[1.0, 2.0]);
        assert_eq!(csr.neighbors(1).0, &[0]);
    }
}
