//! Compressed sparse row (CSR) graph view.
//!
//! The adjacency-list [`crate::Graph`] is convenient for the game
//! engine's incremental edits; the APSP-heavy kernels (γ certification
//! on large instances, the benchmark sweeps) prefer a frozen,
//! cache-friendly layout. [`Csr`] is an immutable snapshot with all
//! neighbour lists in two flat arrays, plus a Dijkstra that reuses
//! caller-provided scratch buffers to avoid per-source allocation.

use crate::{DistMatrix, Graph};

/// Immutable CSR snapshot of an undirected weighted graph.
#[derive(Debug, Clone, Default)]
pub struct Csr {
    offsets: Vec<u32>,
    targets: Vec<u32>,
    weights: Vec<f64>,
}

/// Arena recycling: the best-response evaluator re-freezes a rest graph
/// per evaluation and rents the CSR instead of allocating three flat
/// arrays each time. A reset CSR has zero vertices; renters refill it
/// with [`Csr::refill_from_graph`] / [`Csr::refill_from_graph_without_vertex`].
impl gncg_parallel::arena::Scratch for Csr {
    fn reset(&mut self) {
        self.offsets.clear();
        self.targets.clear();
        self.weights.clear();
    }
}

/// Reusable scratch space for [`Csr::dijkstra_into`].
#[derive(Debug, Default)]
pub struct DijkstraScratch {
    heap: crate::heap4::QuadHeap,
}

/// Arena recycling for per-worker Dijkstra scratch: hot loops rent a
/// scratch with `gncg_parallel::arena::rent::<DijkstraScratch>()`
/// instead of constructing one per call. The kernel drains the heap
/// before returning, so a recycled scratch is indistinguishable from a
/// fresh one.
impl gncg_parallel::arena::Scratch for DijkstraScratch {
    fn reset(&mut self) {
        self.heap.clear();
    }
}

/// Queue keys pack the raw IEEE bits of the tentative distance above
/// the node id: `bits << 32 | node`. Every distance pushed is a sum of
/// non-negative weights — sign bit clear (the kernel debug-asserts it)
/// — and over sign-positive doubles the u64 bit pattern is strictly
/// monotone in the value, so the packed integer compare orders entries
/// by distance with ties broken toward the smaller node id: exactly the
/// order the legacy float comparator imposed, and since `(bits, node)`
/// pairs are distinct across live entries the pop sequence is
/// bit-for-bit the legacy one regardless of heap arity.
#[inline]
pub(crate) fn pack_key(bits: u64, node: u32) -> u128 {
    ((bits as u128) << 32) | node as u128
}

impl Csr {
    /// Snapshot an adjacency-list graph.
    pub fn from_graph(g: &Graph) -> Self {
        let n = g.len();
        assert!(n <= u32::MAX as usize, "graph too large for CSR u32 ids");
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::with_capacity(2 * g.num_edges());
        let mut weights = Vec::with_capacity(2 * g.num_edges());
        offsets.push(0u32);
        for u in 0..n {
            for &(v, w) in g.neighbors(u) {
                targets.push(v as u32);
                weights.push(w);
            }
            offsets.push(targets.len() as u32);
        }
        Self {
            offsets,
            targets,
            weights,
        }
    }

    /// Re-snapshot `g` into this CSR, reusing the three flat buffers —
    /// the allocation-free refresh for loops that re-freeze a mutating
    /// graph (e.g. the approx-dynamics probe loop after each accepted
    /// move). Produces exactly the arrays [`Csr::from_graph`] would.
    pub fn refill_from_graph(&mut self, g: &Graph) {
        let n = g.len();
        assert!(n <= u32::MAX as usize, "graph too large for CSR u32 ids");
        self.offsets.clear();
        self.targets.clear();
        self.weights.clear();
        self.offsets.push(0u32);
        for u in 0..n {
            for &(v, w) in g.neighbors(u) {
                self.targets.push(v as u32);
                self.weights.push(w);
            }
            self.offsets.push(self.targets.len() as u32);
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// True iff the graph has zero vertices.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Neighbour slice of `u` as `(targets, weights)`.
    #[inline]
    pub fn neighbors(&self, u: usize) -> (&[u32], &[f64]) {
        let lo = self.offsets[u] as usize;
        let hi = self.offsets[u + 1] as usize;
        (&self.targets[lo..hi], &self.weights[lo..hi])
    }

    /// Snapshot `g` with vertex `skip` isolated: every edge incident to
    /// `skip` is dropped, all other vertices keep their ids. This is the
    /// "rest graph" `G − u` of the best-response evaluator, built without
    /// mutating or cloning the adjacency-list graph.
    pub fn from_graph_without_vertex(g: &Graph, skip: usize) -> Self {
        let mut csr = Self::default();
        csr.refill_from_graph_without_vertex(g, skip);
        csr
    }

    /// Allocation-free counterpart of [`Csr::from_graph_without_vertex`]:
    /// re-snapshot `g` minus vertex `skip` into this CSR's buffers.
    pub fn refill_from_graph_without_vertex(&mut self, g: &Graph, skip: usize) {
        let n = g.len();
        assert!(n <= u32::MAX as usize, "graph too large for CSR u32 ids");
        assert!(skip < n);
        self.offsets.clear();
        self.targets.clear();
        self.weights.clear();
        self.offsets.push(0u32);
        for u in 0..n {
            if u != skip {
                for &(v, w) in g.neighbors(u) {
                    if v != skip {
                        self.targets.push(v as u32);
                        self.weights.push(w);
                    }
                }
            }
            self.offsets.push(self.targets.len() as u32);
        }
    }

    /// Dijkstra from `source` writing distances into `dist`
    /// (`f64::INFINITY` for unreachable), reusing `scratch`.
    pub fn dijkstra_into(&self, source: usize, dist: &mut Vec<f64>, scratch: &mut DijkstraScratch) {
        let n = self.len();
        dist.clear();
        dist.resize(n, f64::INFINITY);
        self.dijkstra_into_slice(source, dist, scratch);
    }

    /// Dijkstra writing into a caller-owned row of exactly `n` entries —
    /// the allocation-free kernel behind [`Csr::all_pairs`] and the
    /// incremental evaluation context's row refresh.
    pub fn dijkstra_into_slice(
        &self,
        source: usize,
        dist: &mut [f64],
        scratch: &mut DijkstraScratch,
    ) {
        let n = self.len();
        assert_eq!(dist.len(), n, "distance row must have n entries");
        dist.fill(f64::INFINITY);
        scratch.heap.clear();
        dist[source] = 0.0;
        scratch.heap.push(pack_key(0.0f64.to_bits(), source as u32));
        // work tallies live in registers; one gated trace call per kernel
        // invocation keeps the off-path free of per-edge instrumentation
        let (mut pops, mut relaxed) = (0u64, 0u64);
        while let Some(key) = scratch.heap.pop() {
            pops += 1;
            let u = key as u32 as usize;
            let d = f64::from_bits((key >> 32) as u64);
            // Stale-entry scan in place of a settled bitmap: a node is
            // re-popped only through an entry that was pushed before a
            // strictly better one, so `d > dist[u]` flags exactly the
            // entries a `done[u]` bit would have skipped — without the
            // O(n) bitmap reset per source.
            //
            // SAFETY (here and below): every id in the heap was packed
            // from either `source` (asserted < n by the `dist[source]`
            // write above) or a CSR target, and `from_graph` /
            // `refill_from_graph*` only emit targets < n, so all `dist`
            // indices are in bounds. The unchecked loads keep the relax
            // loop — the single hottest loop in the repo — free of
            // per-iteration bound branches.
            debug_assert!(u < n);
            if d > unsafe { *dist.get_unchecked(u) } {
                continue;
            }
            // Settled scan over the two contiguous CSR slices; the
            // lockstep zip keeps the relax loop free of bounds checks.
            // SAFETY: `u < n` (above) so `u + 1` indexes `offsets`
            // (length n + 1), and the constructors keep `offsets`
            // monotone with final entry `targets.len()`, so `lo..hi` is
            // a valid range of the parallel target/weight arrays.
            let (ts, ws) = unsafe {
                let lo = *self.offsets.get_unchecked(u) as usize;
                let hi = *self.offsets.get_unchecked(u + 1) as usize;
                (
                    self.targets.get_unchecked(lo..hi),
                    self.weights.get_unchecked(lo..hi),
                )
            };
            for (&v, &w) in ts.iter().zip(ws) {
                let nd = d + w;
                let v = v as usize;
                debug_assert!(v < n);
                let dv = unsafe { dist.get_unchecked_mut(v) };
                if nd < *dv {
                    relaxed += 1;
                    *dv = nd;
                    debug_assert!(nd.to_bits() >> 63 == 0, "negative tentative distance");
                    scratch.heap.push(pack_key(nd.to_bits(), v as u32));
                }
            }
        }
        gncg_trace::record_dijkstra(pops, relaxed);
    }

    /// Sum of distances from `source` (∞ if anything unreachable).
    pub fn distance_sum(&self, source: usize, scratch: &mut DijkstraScratch) -> f64 {
        let mut dist = gncg_parallel::arena::rent::<Vec<f64>>();
        self.dijkstra_into(source, &mut dist, scratch);
        dist.iter().sum()
    }

    /// Parallel APSP into a flat [`DistMatrix`], one persistent Dijkstra
    /// scratch per worker thread. Entry-for-entry identical to running
    /// [`crate::dijkstra::distances`] from every source.
    pub fn all_pairs(&self) -> DistMatrix {
        let _span = gncg_trace::span("graph.apsp");
        let mut m = DistMatrix::default();
        self.all_pairs_into(&mut m);
        m
    }

    /// APSP into a caller-owned (typically arena-rented) matrix, reshaped
    /// to n×n. Allocation-free once the buffers reach steady-state size,
    /// and span-free: the per-evaluation rest-graph path calls this a few
    /// thousand times per dynamics run, where per-call span bookkeeping
    /// is measurable; callers that want attribution (e.g. [`Csr::all_pairs`])
    /// open their own span.
    pub fn all_pairs_into(&self, m: &mut DistMatrix) {
        let n = self.len();
        m.reshape(n, f64::INFINITY);
        let mut rows = gncg_parallel::arena::rent::<Vec<usize>>();
        rows.extend(0..n);
        m.par_fill_rows_with(
            &rows,
            gncg_parallel::arena::rent::<DijkstraScratch>,
            |scratch, u, row| self.dijkstra_into_slice(u, row, scratch),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{apsp, dijkstra};

    fn random_graph(n: usize, seed: u64) -> Graph {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut g = Graph::new(n);
        for u in 0..n - 1 {
            g.add_edge(u, u + 1, 0.1 + rng.gen::<f64>());
        }
        for _ in 0..2 * n {
            let u = rng.gen_range(0..n);
            let v = rng.gen_range(0..n);
            if u != v {
                g.add_edge(u, v, 0.1 + rng.gen::<f64>() * 3.0);
            }
        }
        g
    }

    #[test]
    fn csr_matches_adjacency_dijkstra() {
        for seed in 0..5 {
            let g = random_graph(40, seed);
            let csr = Csr::from_graph(&g);
            let mut scratch = DijkstraScratch::default();
            let mut dist = Vec::new();
            for s in 0..g.len() {
                csr.dijkstra_into(s, &mut dist, &mut scratch);
                let reference = dijkstra::distances(&g, s);
                assert_eq!(dist, reference, "seed {seed} source {s}");
            }
        }
    }

    #[test]
    fn csr_apsp_matches() {
        let g = random_graph(30, 9);
        let csr = Csr::from_graph(&g);
        assert_eq!(csr.all_pairs(), apsp::all_pairs(&g));
    }

    #[test]
    fn disconnected_vertices_are_infinite() {
        let g = Graph::from_edges(4, &[(0, 1, 1.0)]);
        let csr = Csr::from_graph(&g);
        let mut scratch = DijkstraScratch::default();
        let mut dist = Vec::new();
        csr.dijkstra_into(0, &mut dist, &mut scratch);
        assert_eq!(dist[1], 1.0);
        assert!(dist[2].is_infinite() && dist[3].is_infinite());
        assert!(csr.distance_sum(0, &mut scratch).is_infinite());
    }

    #[test]
    fn scratch_reuse_is_clean() {
        let g1 = random_graph(20, 1);
        let g2 = random_graph(25, 2);
        let c1 = Csr::from_graph(&g1);
        let c2 = Csr::from_graph(&g2);
        let mut scratch = DijkstraScratch::default();
        let mut dist = Vec::new();
        c1.dijkstra_into(0, &mut dist, &mut scratch);
        c2.dijkstra_into(3, &mut dist, &mut scratch);
        assert_eq!(dist, dijkstra::distances(&g2, 3));
    }

    #[test]
    fn without_vertex_isolates_it() {
        for seed in 0..3 {
            let g = random_graph(25, seed + 40);
            for skip in [0, 7, 24] {
                let csr = Csr::from_graph_without_vertex(&g, skip);
                // reference: clone the graph and drop skip's edges
                let mut reduced = g.clone();
                let nbrs: Vec<usize> = reduced.neighbors(skip).iter().map(|&(v, _)| v).collect();
                for v in nbrs {
                    reduced.remove_edge(skip, v);
                }
                let reference = Csr::from_graph(&reduced);
                let mut s1 = DijkstraScratch::default();
                let mut s2 = DijkstraScratch::default();
                let mut d1 = Vec::new();
                let mut d2 = Vec::new();
                for s in 0..g.len() {
                    csr.dijkstra_into(s, &mut d1, &mut s1);
                    reference.dijkstra_into(s, &mut d2, &mut s2);
                    assert_eq!(d1, d2, "seed {seed} skip {skip} source {s}");
                }
            }
        }
    }

    #[test]
    fn slice_kernel_matches_vec_kernel() {
        let g = random_graph(30, 77);
        let csr = Csr::from_graph(&g);
        let mut scratch = DijkstraScratch::default();
        let mut vec_dist = Vec::new();
        let mut row = vec![0.0; g.len()];
        for s in 0..g.len() {
            csr.dijkstra_into(s, &mut vec_dist, &mut scratch);
            csr.dijkstra_into_slice(s, &mut row, &mut scratch);
            assert_eq!(row, vec_dist);
        }
    }

    #[test]
    fn neighbor_slices() {
        let g = Graph::from_edges(3, &[(0, 1, 1.0), (0, 2, 2.0)]);
        let csr = Csr::from_graph(&g);
        let (ts, ws) = csr.neighbors(0);
        assert_eq!(ts, &[1, 2]);
        assert_eq!(ws, &[1.0, 2.0]);
        assert_eq!(csr.neighbors(1).0, &[0]);
    }
}
