//! Minimum spanning trees via Prim's algorithm.
//!
//! The paper uses the MST twice: Theorem 3.9 shows any Euclidean MST is an
//! (n−1, n−1)-network, and α·w(MST) is the universal lower bound on the
//! edge cost of *any* connected network (used by γ certification). We run
//! Prim in O(n²) against a dense metric given as a closure — this covers
//! both point sets (‖·,·‖) and weighted host networks without building an
//! explicit complete graph.

use crate::Graph;
use gncg_geometry::PointSet;

/// MST edge list on vertices `0..n` under the dense weight function
/// `weight(i, j)` (must be symmetric; called only with `i != j`).
///
/// Deterministic: among equal-weight candidates, the smallest vertex index
/// joins the tree first.
pub fn prim_dense(n: usize, weight: impl Fn(usize, usize) -> f64) -> Vec<(usize, usize, f64)> {
    assert!(n >= 1);
    if n == 1 {
        return Vec::new();
    }
    let mut in_tree = vec![false; n];
    let mut best_cost = vec![f64::INFINITY; n];
    let mut best_link = vec![usize::MAX; n];
    let mut edges = Vec::with_capacity(n - 1);
    in_tree[0] = true;
    for v in 1..n {
        best_cost[v] = weight(0, v);
        best_link[v] = 0;
    }
    for _ in 1..n {
        let mut u = usize::MAX;
        let mut u_cost = f64::INFINITY;
        for v in 0..n {
            if !in_tree[v] && best_cost[v] < u_cost {
                u = v;
                u_cost = best_cost[v];
            }
        }
        assert!(u != usize::MAX, "disconnected weight function");
        in_tree[u] = true;
        edges.push((best_link[u].min(u), best_link[u].max(u), u_cost));
        for v in 0..n {
            if !in_tree[v] {
                let w = weight(u, v);
                if w < best_cost[v] {
                    best_cost[v] = w;
                    best_link[v] = u;
                }
            }
        }
    }
    edges
}

/// Euclidean MST of a point set, as a [`Graph`].
pub fn euclidean_mst(ps: &PointSet) -> Graph {
    let edges = prim_dense(ps.len(), |i, j| ps.dist(i, j));
    Graph::from_edges(ps.len(), &edges)
}

/// Total weight of the Euclidean MST — the `α·w(MST)` building block of
/// the social-optimum lower bound.
pub fn euclidean_mst_weight(ps: &PointSet) -> f64 {
    prim_dense(ps.len(), |i, j| ps.dist(i, j))
        .iter()
        .map(|&(_, _, w)| w)
        .sum()
}

/// MST of an explicit (connected) graph: Prim over adjacency lists,
/// O(m log n) with a lazy heap. Panics if the graph is disconnected.
pub fn graph_mst(g: &Graph) -> Graph {
    use std::cmp::Ordering;
    use std::collections::BinaryHeap;

    #[derive(PartialEq)]
    struct E(f64, usize, usize); // (weight, from, to)
    impl Eq for E {}
    impl Ord for E {
        fn cmp(&self, o: &Self) -> Ordering {
            o.0.partial_cmp(&self.0)
                .unwrap_or(Ordering::Equal)
                .then_with(|| o.2.cmp(&self.2))
        }
    }
    impl PartialOrd for E {
        fn partial_cmp(&self, o: &Self) -> Option<Ordering> {
            Some(self.cmp(o))
        }
    }

    let n = g.len();
    let mut out = Graph::new(n);
    if n == 1 {
        return out;
    }
    let mut in_tree = vec![false; n];
    let mut heap = BinaryHeap::new();
    in_tree[0] = true;
    for &(v, w) in g.neighbors(0) {
        heap.push(E(w, 0, v));
    }
    let mut added = 0;
    while let Some(E(w, u, v)) = heap.pop() {
        if in_tree[v] {
            continue;
        }
        in_tree[v] = true;
        out.add_edge(u, v, w);
        added += 1;
        if added == n - 1 {
            return out;
        }
        for &(x, wx) in g.neighbors(v) {
            if !in_tree[x] {
                heap.push(E(wx, v, x));
            }
        }
    }
    panic!("graph_mst: input graph is disconnected");
}

#[cfg(test)]
mod tests {
    use super::*;
    use gncg_geometry::Point;

    #[test]
    fn mst_of_line_is_consecutive_edges() {
        let ps = gncg_geometry::generators::line(6, 5.0);
        let mst = euclidean_mst(&ps);
        assert_eq!(mst.num_edges(), 5);
        for i in 0..5 {
            assert!(mst.has_edge(i, i + 1));
        }
        assert!((euclidean_mst_weight(&ps) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn mst_of_square() {
        let ps = PointSet::new(vec![
            Point::d2(0.0, 0.0),
            Point::d2(1.0, 0.0),
            Point::d2(0.0, 1.0),
            Point::d2(1.0, 1.0),
        ]);
        // three unit edges, never a diagonal
        let mst = euclidean_mst(&ps);
        assert_eq!(mst.num_edges(), 3);
        assert!((mst.total_weight() - 3.0).abs() < 1e-12);
        assert!(!mst.has_edge(0, 3));
        assert!(!mst.has_edge(1, 2));
    }

    #[test]
    fn mst_weight_vs_kruskal_brute_force() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        for _ in 0..10 {
            let pts: Vec<Point> = (0..12)
                .map(|_| Point::d2(rng.gen::<f64>(), rng.gen::<f64>()))
                .collect();
            let ps = PointSet::new(pts);
            let prim_w = euclidean_mst_weight(&ps);
            let kruskal_w = kruskal_weight(&ps);
            assert!((prim_w - kruskal_w).abs() < 1e-9);
        }
    }

    fn kruskal_weight(ps: &PointSet) -> f64 {
        let n = ps.len();
        let mut edges = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                edges.push((ps.dist(i, j), i, j));
            }
        }
        edges.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(p: &mut Vec<usize>, x: usize) -> usize {
            if p[x] != x {
                let r = find(p, p[x]);
                p[x] = r;
            }
            p[x]
        }
        let mut total = 0.0;
        for (w, u, v) in edges {
            let (ru, rv) = (find(&mut parent, u), find(&mut parent, v));
            if ru != rv {
                parent[ru] = rv;
                total += w;
            }
        }
        total
    }

    #[test]
    fn single_point_mst_empty() {
        let ps = PointSet::new(vec![Point::d1(0.0)]);
        assert_eq!(euclidean_mst(&ps).num_edges(), 0);
        assert_eq!(euclidean_mst_weight(&ps), 0.0);
    }

    #[test]
    fn graph_mst_matches_dense_on_complete_graph() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let n = 15;
        let mut w = vec![vec![0.0; n]; n];
        for (i, row) in w.iter_mut().enumerate() {
            for x in row.iter_mut().skip(i + 1) {
                *x = rng.gen::<f64>() * 10.0 + 0.1;
            }
        }
        let upper = w.clone();
        for (i, row) in w.iter_mut().enumerate() {
            for (j, x) in row.iter_mut().enumerate().take(i) {
                *x = upper[j][i];
            }
        }
        let dense = prim_dense(n, |i, j| w[i][j]);
        let dense_total: f64 = dense.iter().map(|&(_, _, x)| x).sum();
        let g = Graph::complete(n, |i, j| w[i][j]);
        let sparse = graph_mst(&g);
        assert!((sparse.total_weight() - dense_total).abs() < 1e-9);
        assert_eq!(sparse.num_edges(), n - 1);
    }

    #[test]
    #[should_panic(expected = "disconnected")]
    fn graph_mst_panics_on_disconnected() {
        let g = Graph::from_edges(4, &[(0, 1, 1.0), (2, 3, 1.0)]);
        graph_mst(&g);
    }

    #[test]
    fn mst_with_colocated_points_has_zero_edges() {
        let ps = gncg_geometry::generators::triangle_clusters(3, 0.0);
        let mst = euclidean_mst(&ps);
        // 9 points -> 8 edges; 6 of them zero-length (within clusters),
        // 2 of them length 1 (connecting corners)
        assert_eq!(mst.num_edges(), 8);
        assert!((mst.total_weight() - 2.0).abs() < 1e-12);
    }
}
