//! Single-source shortest paths (Dijkstra, 4-ary heap).

use crate::heap4::QuadHeap;
use crate::Graph;

/// Queue keys pack the raw IEEE bits of the tentative distance above
/// the node id: `bits << 64 | node`. Pushed distances are sums of
/// non-negative weights (sign bit clear), over which the u64 bit
/// pattern is strictly monotone in the value, so the packed integer
/// compare orders entries by distance with ties broken toward the
/// smaller node id — the same total order the float comparator imposed,
/// hence the same pop sequence (see `csr::pack_key` for the full
/// argument).
#[inline]
fn pack_key(bits: u64, node: usize) -> u128 {
    ((bits as u128) << 64) | node as u128
}

#[inline]
fn unpack_key(key: u128) -> (f64, usize) {
    (f64::from_bits((key >> 64) as u64), key as u64 as usize)
}

/// Reusable scratch for repeated single-source runs: the heap and the
/// distance buffer survive across calls, so a loop of SSSP computations
/// performs zero allocations after the first call (beyond heap growth
/// on the largest instance seen).
#[derive(Debug, Default)]
pub struct DijkstraWorkspace {
    heap: QuadHeap,
    dist: Vec<f64>,
}

/// Arena recycling: the single-shot entry points below rent a workspace
/// from `gncg_parallel::arena` instead of constructing one per call, so
/// repeated calls on the same thread are allocation-free after warmup.
impl gncg_parallel::arena::Scratch for DijkstraWorkspace {
    fn reset(&mut self) {
        self.heap.clear();
        self.dist.clear();
    }
}

impl DijkstraWorkspace {
    /// Fresh, empty workspace.
    pub fn new() -> Self {
        Self::default()
    }

    /// The distance buffer of the most recent run.
    #[inline]
    pub fn dist(&self) -> &[f64] {
        &self.dist
    }
}

/// Shortest-path distances from `source` to every vertex.
/// Unreachable vertices get `f64::INFINITY` (the paper's `d_G(u,v) = +∞`).
pub fn distances(g: &Graph, source: usize) -> Vec<f64> {
    let mut ws = gncg_parallel::arena::rent::<DijkstraWorkspace>();
    distances_into(g, source, &mut ws);
    // steal the distance buffer (the returned value); heap and settled
    // set go back to the pool with their capacity intact
    std::mem::take(&mut ws.dist)
}

/// Like [`distances`], but reusing `ws` for every buffer; the result is
/// in `ws.dist()` (also returned). Bit-identical to [`distances`]: same
/// heap order, same tie-breaks, same `d + w` accumulation.
pub fn distances_into<'a>(g: &Graph, source: usize, ws: &'a mut DijkstraWorkspace) -> &'a [f64] {
    let n = g.len();
    assert!(source < n);
    ws.dist.clear();
    ws.dist.resize(n, f64::INFINITY);
    ws.heap.clear();
    ws.dist[source] = 0.0;
    ws.heap.push(pack_key(0.0f64.to_bits(), source));
    let (mut pops, mut relaxed) = (0u64, 0u64);
    while let Some(key) = ws.heap.pop() {
        pops += 1;
        let (d, u) = unpack_key(key);
        // stale-entry scan; see `Csr::dijkstra_into_slice` for why this
        // is exactly the legacy settled-bitmap skip
        if d > ws.dist[u] {
            continue;
        }
        for &(v, w) in g.neighbors(u) {
            let nd = d + w;
            if nd < ws.dist[v] {
                relaxed += 1;
                ws.dist[v] = nd;
                debug_assert!(nd.to_bits() >> 63 == 0, "negative tentative distance");
                ws.heap.push(pack_key(nd.to_bits(), v));
            }
        }
    }
    gncg_trace::record_dijkstra(pops, relaxed);
    &ws.dist
}

/// Like [`distances`] but abandons exploration beyond `limit` — used by
/// the greedy spanner, which only asks "is `d_G(u,v) ≤ t·‖u,v‖`?".
/// Vertices whose distance exceeds `limit` may be reported as `INFINITY`.
pub fn distances_with_limit(g: &Graph, source: usize, limit: f64) -> Vec<f64> {
    let n = g.len();
    assert!(source < n);
    // the distance buffer is the return value; heap and settled set are
    // rented scratch
    let mut dist = vec![f64::INFINITY; n];
    let mut ws = gncg_parallel::arena::rent::<DijkstraWorkspace>();
    let heap = &mut ws.heap;
    dist[source] = 0.0;
    heap.push(pack_key(0.0f64.to_bits(), source));
    let (mut pops, mut relaxed) = (0u64, 0u64);
    while let Some(key) = heap.pop() {
        pops += 1;
        let (d, u) = unpack_key(key);
        if d > dist[u] {
            continue; // stale entry, node already settled closer
        }
        if d > limit {
            break; // every remaining entry is at least as far
        }
        for &(v, w) in g.neighbors(u) {
            let nd = d + w;
            if nd < dist[v] {
                relaxed += 1;
                dist[v] = nd;
                heap.push(pack_key(nd.to_bits(), v));
            }
        }
    }
    gncg_trace::record_dijkstra(pops, relaxed);
    dist
}

/// Shortest-path distance between a single pair (early exit once `target`
/// is settled). `INFINITY` when disconnected.
pub fn pair_distance(g: &Graph, source: usize, target: usize) -> f64 {
    let n = g.len();
    assert!(source < n && target < n);
    if source == target {
        return 0.0;
    }
    let mut ws = gncg_parallel::arena::rent::<DijkstraWorkspace>();
    let DijkstraWorkspace { heap, dist } = &mut *ws;
    dist.resize(n, f64::INFINITY);
    dist[source] = 0.0;
    heap.push(pack_key(0.0f64.to_bits(), source));
    let (mut pops, mut relaxed) = (0u64, 0u64);
    while let Some(key) = heap.pop() {
        pops += 1;
        let (d, u) = unpack_key(key);
        if d > dist[u] {
            continue; // stale entry, node already settled closer
        }
        if u == target {
            gncg_trace::record_dijkstra(pops, relaxed);
            return d;
        }
        for &(v, w) in g.neighbors(u) {
            let nd = d + w;
            if nd < dist[v] {
                relaxed += 1;
                dist[v] = nd;
                heap.push(pack_key(nd.to_bits(), v));
            }
        }
    }
    gncg_trace::record_dijkstra(pops, relaxed);
    f64::INFINITY
}

/// Shortest-path tree: distances plus a predecessor per vertex
/// (`usize::MAX` for the source and unreachable vertices).
pub fn tree(g: &Graph, source: usize) -> (Vec<f64>, Vec<usize>) {
    let n = g.len();
    assert!(source < n);
    // dist and pred are the return values; heap and settled set are
    // rented scratch
    let mut dist = vec![f64::INFINITY; n];
    let mut pred = vec![usize::MAX; n];
    let mut ws = gncg_parallel::arena::rent::<DijkstraWorkspace>();
    let heap = &mut ws.heap;
    dist[source] = 0.0;
    heap.push(pack_key(0.0f64.to_bits(), source));
    let (mut pops, mut relaxed) = (0u64, 0u64);
    while let Some(key) = heap.pop() {
        pops += 1;
        let (d, u) = unpack_key(key);
        if d > dist[u] {
            continue; // stale entry, node already settled closer
        }
        for &(v, w) in g.neighbors(u) {
            let nd = d + w;
            if nd < dist[v] {
                relaxed += 1;
                dist[v] = nd;
                pred[v] = u;
                heap.push(pack_key(nd.to_bits(), v));
            }
        }
    }
    gncg_trace::record_dijkstra(pops, relaxed);
    (dist, pred)
}

/// Reconstruct the vertex path `source → … → target` from a predecessor
/// array produced by [`tree`]. `None` when `target` is unreachable.
pub fn path_from_tree(pred: &[usize], source: usize, target: usize) -> Option<Vec<usize>> {
    if source == target {
        return Some(vec![source]);
    }
    if pred[target] == usize::MAX {
        return None;
    }
    let mut path = vec![target];
    let mut cur = target;
    while cur != source {
        cur = pred[cur];
        path.push(cur);
        if path.len() > pred.len() {
            return None; // defensive: corrupted predecessor array
        }
    }
    path.reverse();
    Some(path)
}

/// Sum of distances from `source` to all vertices — the distance cost
/// `d_G(u, P)` of agent `u` in the game. `INFINITY` if any vertex is
/// unreachable.
pub fn distance_sum(g: &Graph, source: usize) -> f64 {
    let mut ws = gncg_parallel::arena::rent::<DijkstraWorkspace>();
    distances_into(g, source, &mut ws).iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Path graph 0-1-2-3 with unit weights plus a heavy shortcut 0-3.
    fn diamond() -> Graph {
        Graph::from_edges(4, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (0, 3, 10.0)])
    }

    #[test]
    fn distances_prefers_short_path() {
        let d = distances(&diamond(), 0);
        assert_eq!(d, vec![0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn pair_distance_matches() {
        let g = diamond();
        assert_eq!(pair_distance(&g, 0, 3), 3.0);
        assert_eq!(pair_distance(&g, 3, 0), 3.0);
        assert_eq!(pair_distance(&g, 1, 1), 0.0);
    }

    #[test]
    fn unreachable_is_infinite() {
        let g = Graph::from_edges(4, &[(0, 1, 1.0)]);
        let d = distances(&g, 0);
        assert_eq!(d[1], 1.0);
        assert!(d[2].is_infinite());
        assert!(pair_distance(&g, 0, 3).is_infinite());
        assert!(distance_sum(&g, 0).is_infinite());
    }

    #[test]
    fn limit_cuts_off_far_vertices() {
        let g = Graph::from_edges(4, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)]);
        let d = distances_with_limit(&g, 0, 1.5);
        assert_eq!(d[0], 0.0);
        assert_eq!(d[1], 1.0);
        // vertex 2 at distance 2 may or may not be settled; 3 must not be
        assert!(d[3].is_infinite() || d[3] == 3.0);
    }

    #[test]
    fn tree_and_path_reconstruction() {
        let g = diamond();
        let (dist, pred) = tree(&g, 0);
        assert_eq!(dist[3], 3.0);
        let p = path_from_tree(&pred, 0, 3).unwrap();
        assert_eq!(p, vec![0, 1, 2, 3]);
        assert_eq!(path_from_tree(&pred, 0, 0).unwrap(), vec![0]);
    }

    #[test]
    fn path_none_when_unreachable() {
        let g = Graph::from_edges(3, &[(0, 1, 1.0)]);
        let (_, pred) = tree(&g, 0);
        assert!(path_from_tree(&pred, 0, 2).is_none());
    }

    #[test]
    fn zero_weight_edges() {
        let g = Graph::from_edges(3, &[(0, 1, 0.0), (1, 2, 5.0)]);
        let d = distances(&g, 0);
        assert_eq!(d, vec![0.0, 0.0, 5.0]);
    }

    #[test]
    fn distance_sum_star() {
        // star centred at 0 with unit spokes
        let g = Graph::from_edges(5, &[(0, 1, 1.0), (0, 2, 1.0), (0, 3, 1.0), (0, 4, 1.0)]);
        assert_eq!(distance_sum(&g, 0), 4.0);
        assert_eq!(distance_sum(&g, 1), 1.0 + 2.0 * 3.0);
    }

    #[test]
    fn workspace_reuse_matches_fresh_runs() {
        let g1 = diamond();
        let g2 = Graph::from_edges(6, &[(0, 5, 2.0), (5, 4, 1.0), (4, 3, 1.0)]);
        let mut ws = DijkstraWorkspace::new();
        for s in 0..g1.len() {
            assert_eq!(distances_into(&g1, s, &mut ws), &distances(&g1, s)[..]);
        }
        // switching to a different-sized graph must not leak state
        for s in 0..g2.len() {
            assert_eq!(distances_into(&g2, s, &mut ws), &distances(&g2, s)[..]);
        }
    }

    #[test]
    fn big_random_graph_triangle_inequality_of_metric_closure() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let n = 60;
        let mut g = Graph::new(n);
        for u in 0..n {
            for v in (u + 1)..n {
                if rng.gen::<f64>() < 0.1 {
                    g.add_edge(u, v, rng.gen::<f64>() * 10.0);
                }
            }
        }
        // ensure connectivity with a cheap path
        for u in 0..n - 1 {
            if !g.has_edge(u, u + 1) {
                g.add_edge(u, u + 1, 5.0);
            }
        }
        let d0 = distances(&g, 0);
        let d1 = distances(&g, 1);
        let w01 = pair_distance(&g, 0, 1);
        for v in 0..n {
            assert!(d0[v] <= w01 + d1[v] + 1e-9, "triangle violated at {v}");
        }
    }
}
