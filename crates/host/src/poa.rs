//! Theorem 5.4 / Corollary 5.5: the GNCG Price of Anarchy is Θ(α).
//!
//! We verify the `2(α+1)` upper bound empirically: find Nash equilibria
//! on random hosts by best-response dynamics, then check
//! `SC(NE)/SC(OPT) ≤ 2(α+1)` with the exact optimum (small n) or the
//! certified lower bound. We also check the spanner lemma the proof
//! leans on (Lemma 2.2 of Bilò et al.): every NE is an (α+1)-spanner of
//! the host metric.

use crate::HostNetwork;
use gncg_game::{cost, dispatch_model, dynamics, exact, GameSpec, OwnedNetwork, SolverConfig};

/// Theorem 5.4's PoA upper bound.
pub fn theorem_5_4_bound(alpha: f64) -> f64 {
    2.0 * (alpha + 1.0)
}

/// Outcome of a PoA probe on one host instance.
#[derive(Debug, Clone)]
pub struct PoaProbe {
    /// The equilibrium found (None when dynamics didn't converge).
    pub equilibrium: Option<OwnedNetwork>,
    /// Social cost of the equilibrium.
    pub ne_cost: f64,
    /// Exact optimum cost when n ≤ 8, otherwise the certified lower
    /// bound.
    pub opt_cost: f64,
    /// Whether `opt_cost` is exact.
    pub opt_is_exact: bool,
    /// The PoA sample `ne_cost / opt_cost` (an upper estimate when
    /// `opt_cost` is only a lower bound).
    pub ratio: f64,
}

/// Try to find a NE on the host by best-response dynamics from the
/// shortest-path subnetwork, then compare with the optimum.
pub fn probe_poa(h: &HostNetwork, alpha: f64, max_steps: usize) -> PoaProbe {
    probe_poa_spec(h, alpha, max_steps, &SolverConfig::default())
}

/// [`probe_poa`] under an explicit [`SolverConfig`]: equilibria, social
/// costs, and the optimum are all taken under `cfg`'s cost model
/// (and edge-formation rule for the dynamics). The default config is
/// the identical code path as [`probe_poa`].
pub fn probe_poa_spec(
    h: &HostNetwork,
    alpha: f64,
    max_steps: usize,
    cfg: &SolverConfig,
) -> PoaProbe {
    let w = h.as_weights();
    let start = crate::corollaries::shortest_path_subnetwork(h);
    let outcome = dynamics::run_spec(
        &w,
        &start,
        alpha,
        dynamics::ResponseRule::BestResponse,
        dynamics::AgentOrder::RoundRobin,
        max_steps,
        cfg,
    );
    let equilibrium = match outcome {
        dynamics::Outcome::Converged { state, .. } => Some(state),
        _ => None,
    };
    let (ne_cost, ratio, opt_cost, opt_is_exact) = match &equilibrium {
        Some(ne) => dispatch_model!(cfg.model, M, {
            let sc = cost::social_cost_model::<_, M>(&w, ne, alpha);
            let (opt, exact_flag) = match exact::exact_social_optimum(&w, alpha, cfg) {
                gncg_game::Outcome::Exact(o) => (o.social_cost, true),
                gncg_game::Outcome::Degraded {
                    certified_bound, ..
                } => (certified_bound, false),
            };
            (sc, sc / opt, opt, exact_flag)
        }),
        None => (f64::NAN, f64::NAN, f64::NAN, false),
    };
    PoaProbe {
        equilibrium,
        ne_cost,
        opt_cost,
        opt_is_exact,
        ratio,
    }
}

/// Deprecated shim for the pre-[`SolverConfig`] signature.
#[deprecated(note = "build a `SolverConfig` and call `probe_poa_spec` instead")]
pub fn probe_poa_with_game_spec(
    h: &HostNetwork,
    alpha: f64,
    max_steps: usize,
    spec: GameSpec,
) -> PoaProbe {
    probe_poa_spec(h, alpha, max_steps, &SolverConfig::from(spec))
}

/// Is a profile an (α+1)-spanner of the host metric? (The structural
/// lemma behind Theorem 5.4.)
pub fn ne_is_alpha_plus_one_spanner(h: &HostNetwork, net: &OwnedNetwork, alpha: f64) -> bool {
    let w = h.as_weights();
    let g = net.graph(&w);
    let d = gncg_graph::apsp::all_pairs(&g);
    let closure = h.metric_closure();
    let n = h.len();
    for u in 0..n {
        for v in 0..n {
            if u != v && d[u][v] > (alpha + 1.0) * closure[u][v] + 1e-9 {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poa_bound_holds_on_random_metric_hosts() {
        let mut converged = 0;
        for seed in 0..6u64 {
            let h = HostNetwork::random_metric(6, seed);
            for alpha in [0.5, 1.5, 4.0] {
                let probe = probe_poa(&h, alpha, 400);
                if let Some(ne) = &probe.equilibrium {
                    converged += 1;
                    assert!(
                        exact::is_nash(&h.as_weights(), ne, alpha),
                        "seed {seed} alpha {alpha}: claimed NE is not a NE"
                    );
                    assert!(
                        probe.ratio <= theorem_5_4_bound(alpha) + 1e-6,
                        "seed {seed} alpha {alpha}: PoA sample {} > bound {}",
                        probe.ratio,
                        theorem_5_4_bound(alpha)
                    );
                    assert!(ne_is_alpha_plus_one_spanner(&h, ne, alpha));
                }
            }
        }
        assert!(converged >= 3, "dynamics converged only {converged} times");
    }

    #[test]
    fn poa_bound_holds_on_nonmetric_hosts() {
        let mut converged = 0;
        for seed in 0..6u64 {
            let h = HostNetwork::random_nonmetric(6, 0.2, 4.0, seed);
            let alpha = 2.0;
            let probe = probe_poa(&h, alpha, 400);
            if probe.equilibrium.is_some() {
                converged += 1;
                assert!(
                    probe.ratio <= theorem_5_4_bound(alpha) + 1e-6,
                    "seed {seed}: PoA sample {} > bound",
                    probe.ratio
                );
            }
        }
        assert!(converged >= 2);
    }

    #[test]
    fn ratio_at_least_one_when_exact() {
        let h = HostNetwork::random_metric(5, 9);
        let probe = probe_poa(&h, 1.0, 300);
        if probe.opt_is_exact && probe.equilibrium.is_some() {
            assert!(probe.ratio >= 1.0 - 1e-9);
        }
    }

    #[test]
    fn default_spec_probe_is_bit_identical_to_probe_poa() {
        let h = HostNetwork::random_metric(6, 17);
        let a = probe_poa(&h, 1.5, 400);
        let b = probe_poa_spec(&h, 1.5, 400, &SolverConfig::default());
        assert_eq!(a.equilibrium.is_some(), b.equilibrium.is_some());
        if a.equilibrium.is_some() {
            assert_eq!(a.ne_cost.to_bits(), b.ne_cost.to_bits());
            assert_eq!(a.opt_cost.to_bits(), b.opt_cost.to_bits());
            assert_eq!(a.ratio.to_bits(), b.ratio.to_bits());
        }
    }

    #[test]
    fn max_model_probe_finds_consistent_equilibria() {
        use gncg_game::{MaxDistance, ModelKind};
        // No theorem constant is claimed for the max objective; the
        // probe must still produce internally consistent samples: a
        // state that is Nash *under the max model*, and a ratio ≥ 1 − ε
        // whenever the optimum is exact.
        let mut converged = 0;
        for seed in 0..6u64 {
            let h = HostNetwork::random_metric(6, seed);
            let cfg = SolverConfig::default().with_model(ModelKind::MaxDistance);
            let probe = probe_poa_spec(&h, 1.5, 400, &cfg);
            if let Some(ne) = &probe.equilibrium {
                converged += 1;
                assert!(
                    exact::is_nash_model::<_, MaxDistance>(&h.as_weights(), ne, 1.5),
                    "seed {seed}: claimed max-model NE is not one"
                );
                if probe.opt_is_exact {
                    assert!(
                        probe.ratio >= 1.0 - 1e-9,
                        "seed {seed}: exact-optimum ratio {} below 1",
                        probe.ratio
                    );
                }
            }
        }
        assert!(
            converged >= 2,
            "max-model dynamics converged only {converged} times"
        );
    }
}
