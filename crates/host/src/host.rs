//! Complete weighted host networks.

use gncg_game::DenseWeights;
use gncg_graph::{apsp, DistMatrix, Graph};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A complete host network `H = (V, E(H))` with arbitrary positive edge
/// weights `w: V×V → ℝ₊` (Section 5). Stored as a flat symmetric
/// [`DistMatrix`].
#[derive(Debug, Clone)]
pub struct HostNetwork {
    w: DistMatrix,
}

impl HostNetwork {
    /// Build from a symmetric weight matrix with zero diagonal, given as
    /// nested rows.
    pub fn from_matrix(w: Vec<Vec<f64>>) -> Self {
        let n = w.len();
        for (i, row) in w.iter().enumerate() {
            assert_eq!(row.len(), n, "matrix must be square (row {i})");
        }
        Self::from_dist_matrix(DistMatrix::from_rows(w))
    }

    /// Build from a symmetric weight matrix with zero diagonal.
    pub fn from_dist_matrix(w: DistMatrix) -> Self {
        let n = w.len();
        assert!(n >= 1);
        for i in 0..n {
            assert_eq!(w.get(i, i), 0.0, "diagonal must be zero");
            for j in 0..n {
                if i != j {
                    let x = w.get(i, j);
                    assert!(x > 0.0 && x.is_finite(), "weights must be positive");
                    assert!((x - w.get(j, i)).abs() < 1e-12, "matrix must be symmetric");
                }
            }
        }
        Self { w }
    }

    /// Euclidean host: weights are pairwise distances of a point set
    /// (with an optional floor to keep weights positive for co-located
    /// points).
    pub fn from_points(ps: &gncg_geometry::PointSet) -> Self {
        let n = ps.len();
        let mut w = DistMatrix::filled(n, 0.0);
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    let d = ps.dist(i, j);
                    assert!(d > 0.0, "host networks need distinct points");
                    w.set(i, j, d);
                }
            }
        }
        Self { w }
    }

    /// Random *metric* host: sample a random weighted graph and take its
    /// metric closure.
    pub fn random_metric(n: usize, seed: u64) -> Self {
        assert!(n >= 2);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut g = Graph::new(n);
        // random spanning chain keeps it connected, plus random chords
        for i in 0..n - 1 {
            g.add_edge(i, i + 1, 0.1 + rng.gen::<f64>());
        }
        for u in 0..n {
            for v in (u + 1)..n {
                if rng.gen::<f64>() < 0.4 && !g.has_edge(u, v) {
                    g.add_edge(u, v, 0.1 + rng.gen::<f64>() * 2.0);
                }
            }
        }
        Self::from_dist_matrix(apsp::all_pairs(&g))
    }

    /// Random *non-metric* host: i.i.d. uniform weights in
    /// `[lo, hi]` — triangle inequality violated with high probability.
    pub fn random_nonmetric(n: usize, lo: f64, hi: f64, seed: u64) -> Self {
        assert!(n >= 2 && 0.0 < lo && lo < hi);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut w = DistMatrix::filled(n, 0.0);
        for u in 0..n {
            for v in (u + 1)..n {
                let x = lo + rng.gen::<f64>() * (hi - lo);
                w.set(u, v, x);
                w.set(v, u, x);
            }
        }
        Self::from_dist_matrix(w)
    }

    /// Tree metric host: distances in a random weighted tree (the GNCG
    /// variant whose PoS is 1 in Bilò et al.).
    pub fn random_tree_metric(n: usize, seed: u64) -> Self {
        assert!(n >= 2);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut g = Graph::new(n);
        for v in 1..n {
            let parent = rng.gen_range(0..v);
            g.add_edge(parent, v, 0.1 + rng.gen::<f64>());
        }
        Self::from_dist_matrix(apsp::all_pairs(&g))
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.w.len()
    }

    /// True iff a single node.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Edge weight `w(u, v)`.
    pub fn weight(&self, u: usize, v: usize) -> f64 {
        self.w.get(u, v)
    }

    /// The full weight matrix.
    pub fn matrix(&self) -> &DistMatrix {
        &self.w
    }

    /// Metric closure: `d_H(u, v)` over the complete host.
    pub fn metric_closure(&self) -> DistMatrix {
        let n = self.len();
        let g = Graph::complete(n, |i, j| self.w.get(i, j));
        apsp::all_pairs(&g)
    }

    /// Does the host satisfy the triangle inequality?
    pub fn is_metric(&self) -> bool {
        let n = self.len();
        for u in 0..n {
            for v in 0..n {
                if u == v {
                    continue;
                }
                for x in 0..n {
                    if x != u
                        && x != v
                        && self.w.get(u, v) > self.w.get(u, x) + self.w.get(x, v) + 1e-9
                    {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// View as the game's weight oracle, carrying the metric closure as
    /// the certified distance lower bound.
    pub fn as_weights(&self) -> DenseWeights {
        DenseWeights::from_matrix(self.w.clone()).with_lower_bounds(self.metric_closure())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_metric_is_metric() {
        for seed in 0..5 {
            let h = HostNetwork::random_metric(12, seed);
            assert!(h.is_metric(), "seed {seed}");
        }
    }

    #[test]
    fn random_nonmetric_usually_is_not() {
        let mut violations = 0;
        for seed in 0..5 {
            let h = HostNetwork::random_nonmetric(10, 0.1, 10.0, seed);
            if !h.is_metric() {
                violations += 1;
            }
        }
        assert!(violations >= 4);
    }

    #[test]
    fn tree_metric_is_metric() {
        let h = HostNetwork::random_tree_metric(15, 3);
        assert!(h.is_metric());
    }

    #[test]
    fn metric_closure_lower_bounds_weights() {
        let h = HostNetwork::random_nonmetric(10, 0.1, 10.0, 9);
        let cl = h.metric_closure();
        for u in 0..10 {
            for v in 0..10 {
                if u != v {
                    assert!(cl[u][v] <= h.weight(u, v) + 1e-9);
                }
            }
        }
    }

    #[test]
    fn closure_of_metric_host_is_identity() {
        let h = HostNetwork::random_metric(10, 1);
        let cl = h.metric_closure();
        for u in 0..10 {
            for v in 0..10 {
                if u != v {
                    assert!((cl[u][v] - h.weight(u, v)).abs() < 1e-9);
                }
            }
        }
    }

    #[test]
    fn from_points_roundtrip() {
        let ps = gncg_geometry::generators::uniform_unit_square(8, 2);
        let h = HostNetwork::from_points(&ps);
        assert!(h.is_metric());
        assert!((h.weight(0, 1) - ps.dist(0, 1)).abs() < 1e-12);
    }

    #[test]
    fn as_weights_exposes_closure_lower_bound() {
        use gncg_game::EdgeWeights;
        let h = HostNetwork::random_nonmetric(8, 0.1, 10.0, 4);
        let w = h.as_weights();
        for u in 0..8 {
            for v in 0..8 {
                if u != v {
                    assert!(w.metric_lower_bound(u, v) <= w.weight(u, v) + 1e-9);
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "symmetric")]
    fn asymmetric_rejected() {
        HostNetwork::from_matrix(vec![vec![0.0, 1.0], vec![2.0, 0.0]]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_weight_rejected() {
        HostNetwork::from_matrix(vec![vec![0.0, 0.0], vec![0.0, 0.0]]);
    }
}
