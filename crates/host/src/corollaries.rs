//! Corollaries 5.1–5.3: approximation constructions on host networks.

use crate::hm_filter;
use crate::HostNetwork;
use gncg_game::OwnedNetwork;
use gncg_graph::{dijkstra, mst, orientation, Graph};

/// Corollary 5.1: the spanning subnetwork
/// `H' = (V, {uv | w(u,v) = d_H(u,v)})` — every edge that realizes the
/// host metric — is an (α+1, α/2+1)-NE. Each edge is owned by its
/// lower-indexed endpoint.
pub fn shortest_path_subnetwork(h: &HostNetwork) -> OwnedNetwork {
    let n = h.len();
    let closure = h.metric_closure();
    let mut net = OwnedNetwork::empty(n);
    for u in 0..n {
        for v in (u + 1)..n {
            if (h.weight(u, v) - closure[u][v]).abs() <= 1e-9 * h.weight(u, v).max(1.0) {
                net.buy(u, v);
            }
        }
    }
    net
}

/// Corollary 5.2: a minimum spanning tree of the host is an
/// (n−1, n−1)-network. Rooted ownership as in the Euclidean case.
pub fn host_mst_network(h: &HostNetwork) -> OwnedNetwork {
    let n = h.len();
    let edges = mst::prim_dense(n, |i, j| h.weight(i, j));
    let tree = Graph::from_edges(n, &edges);
    let mut net = OwnedNetwork::empty(n);
    let mut visited = vec![false; n];
    let mut queue = std::collections::VecDeque::new();
    visited[0] = true;
    queue.push_back(0usize);
    while let Some(u) = queue.pop_front() {
        for &(v, _) in tree.neighbors(u) {
            if !visited[v] {
                visited[v] = true;
                net.buy(v, u);
                queue.push_back(v);
            }
        }
    }
    net
}

/// Parameters for the host variant of Algorithm 1 (Corollary 5.3).
#[derive(Debug, Clone, Copy)]
pub struct HostAlgorithmParams {
    /// Cluster radius divisor `b ≥ 1` (radius is `w_max/b`, with `w_max`
    /// the longest *shortest-path* distance in `H_M`).
    pub b: f64,
    /// Cluster-population threshold `c`.
    pub c: usize,
    /// Stretch target of the greedy metric spanner.
    pub t: f64,
}

/// Result of the host Algorithm 1 run.
#[derive(Debug, Clone)]
pub struct HostAlgorithmResult {
    /// The constructed profile.
    pub network: OwnedNetwork,
    /// True when the cluster branch fired.
    pub clustered: bool,
    /// Measured max edges owned among spanner edges.
    pub k_measured: usize,
    /// Measured stretch of the spanner w.r.t. the `H_M` metric.
    pub t_measured: f64,
}

/// Corollary 5.3: Algorithm 1 on the filtered host `H_M`.
///
/// Differences from the Euclidean version exactly as in the paper: the
/// metric is `d_{H_M}`, the spanner is built on that metric, and an
/// outside node connects to its closest cluster node via the shortest
/// path `π_{H_M}(u, u')` (buying every edge on it).
pub fn algorithm1_on_host(
    h: &HostNetwork,
    _alpha: f64,
    params: HostAlgorithmParams,
) -> HostAlgorithmResult {
    assert!(params.b >= 1.0);
    let n = h.len();
    let hm = hm_filter::hm_filter(h);
    let metric = gncg_graph::apsp::all_pairs(&hm);
    let w_max = metric.as_flat().iter().copied().fold(0.0f64, f64::max);

    // cluster detection over the H_M metric
    let center = if params.c > 0 && w_max > 0.0 {
        let radius = w_max / params.b;
        (0..n).find(|&v| {
            let outside = (0..n).filter(|&u| metric[u][v] > radius).count();
            outside < params.c
        })
    } else {
        None
    };

    match center {
        None => {
            let spanner = greedy_metric_spanner(&metric, &hm, params.t);
            let owned = orientation::bounded_outdegree_orientation(&spanner);
            let network = OwnedNetwork::from_distributed(n, &owned);
            let k = orientation::max_ownership(n, &owned);
            let t_meas = measured_stretch(&spanner, &metric);
            HostAlgorithmResult {
                network,
                clustered: false,
                k_measured: k,
                t_measured: t_meas,
            }
        }
        Some(v) => {
            let c_radius = 2.0 * w_max / params.b;
            let c_v: Vec<usize> = (0..n).filter(|&u| metric[u][v] <= c_radius).collect();
            let outside: Vec<usize> = (0..n).filter(|&u| metric[u][v] > c_radius).collect();
            // spanner over the sub-metric of C_v, using only H_M edges
            // within C_v as candidates
            let local_index: std::collections::HashMap<usize, usize> =
                c_v.iter().enumerate().map(|(i, &g)| (g, i)).collect();
            let sub_metric = gncg_graph::DistMatrix::from_rows(
                c_v.iter()
                    .map(|&a| c_v.iter().map(|&b| metric[a][b]).collect())
                    .collect(),
            );
            let mut sub_hm = Graph::new(c_v.len());
            for (a, b, w) in hm.edges() {
                if let (Some(&la), Some(&lb)) = (local_index.get(&a), local_index.get(&b)) {
                    sub_hm.add_edge(la, lb, w);
                }
            }
            let spanner = greedy_metric_spanner(&sub_metric, &sub_hm, params.t);
            let owned_local = orientation::bounded_outdegree_orientation(&spanner);
            let k = orientation::max_ownership(c_v.len(), &owned_local);
            let t_meas = measured_stretch(&spanner, &sub_metric);

            let mut network = OwnedNetwork::empty(n);
            for &(o, w, _) in &owned_local {
                network.buy(c_v[o], c_v[w]);
            }
            // outside nodes: agent u buys every edge of the shortest
            // H_M path π(u, u') to its closest C_v node u'. Ownership of
            // a path edge {a, b} must sit at one endpoint; we let the
            // path-predecessor endpoint own it, which keeps the created
            // edge set identical to the paper's construction.
            let (_, preds) = hm_trees(&hm);
            for &u in &outside {
                let closest = *c_v
                    .iter()
                    .min_by(|&&a, &&b| metric[u][a].partial_cmp(&metric[u][b]).unwrap())
                    .unwrap();
                if let Some(path) = dijkstra::path_from_tree(&preds[u], u, closest) {
                    for win in path.windows(2) {
                        let (a, b) = (win[0], win[1]);
                        if !network.has_edge(a, b) {
                            network.buy(a, b);
                        }
                    }
                }
            }
            HostAlgorithmResult {
                network,
                clustered: true,
                k_measured: k,
                t_measured: t_meas,
            }
        }
    }
}

/// Greedy t-spanner over an explicit metric, restricted to the edges of
/// the carrier graph `hm` (pairs not connected by an `H_M` edge are
/// reachable through kept edges because `H_M` realizes the metric).
fn greedy_metric_spanner(metric: &gncg_graph::DistMatrix, hm: &Graph, t: f64) -> Graph {
    assert!(t >= 1.0);
    let n = metric.len();
    let mut pairs: Vec<(f64, usize, usize)> =
        hm.edges().into_iter().map(|(u, v, w)| (w, u, v)).collect();
    pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
    let mut g = Graph::new(n);
    for (w, u, v) in pairs {
        let limit = t * w;
        let d = dijkstra::distances_with_limit(&g, u, limit);
        if d[v] > limit * (1.0 + 1e-12) {
            g.add_edge(u, v, w);
        }
    }
    g
}

fn measured_stretch(g: &Graph, metric: &gncg_graph::DistMatrix) -> f64 {
    let n = g.len();
    let d = gncg_graph::apsp::all_pairs(g);
    let mut worst: f64 = 1.0;
    for u in 0..n {
        for v in (u + 1)..n {
            if metric[u][v] > 0.0 {
                worst = worst.max(d[u][v] / metric[u][v]);
            }
        }
    }
    worst
}

fn hm_trees(hm: &Graph) -> (Vec<Vec<f64>>, Vec<Vec<usize>>) {
    let n = hm.len();
    let mut dists = Vec::with_capacity(n);
    let mut preds = Vec::with_capacity(n);
    for s in 0..n {
        let (d, p) = dijkstra::tree(hm, s);
        dists.push(d);
        preds.push(p);
    }
    (dists, preds)
}

/// Corollary 5.1's guarantee.
pub fn corollary_5_1_beta(alpha: f64) -> f64 {
    alpha + 1.0
}

/// Corollary 5.1's efficiency guarantee.
pub fn corollary_5_1_gamma(alpha: f64) -> f64 {
    alpha / 2.0 + 1.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use gncg_game::certify::certify;
    use gncg_game::SolverConfig;

    #[test]
    fn shortest_path_subnetwork_realizes_the_closure() {
        let h = HostNetwork::random_nonmetric(10, 0.2, 5.0, 1);
        let net = shortest_path_subnetwork(&h);
        let w = h.as_weights();
        let g = net.graph(&w);
        assert!(gncg_graph::components::is_connected(&g));
        let d = gncg_graph::apsp::all_pairs(&g);
        let cl = h.metric_closure();
        for u in 0..10 {
            for v in 0..10 {
                assert!(
                    (d[u][v] - cl[u][v]).abs() < 1e-9,
                    "pair ({u},{v}): {} vs {}",
                    d[u][v],
                    cl[u][v]
                );
            }
        }
    }

    #[test]
    fn corollary_5_1_bounds_certified_nonmetric() {
        for seed in 0..3 {
            let h = HostNetwork::random_nonmetric(9, 0.2, 5.0, seed);
            let w = h.as_weights();
            let net = shortest_path_subnetwork(&h);
            for alpha in [0.5, 2.0, 8.0] {
                let r = certify(&w, &net, alpha, &SolverConfig::bounds_only());
                assert!(
                    r.beta_upper <= corollary_5_1_beta(alpha) + 1e-6,
                    "seed {seed} alpha {alpha}: beta {}",
                    r.beta_upper
                );
                assert!(
                    r.gamma_upper <= corollary_5_1_gamma(alpha) + 1e-6,
                    "seed {seed} alpha {alpha}: gamma {}",
                    r.gamma_upper
                );
            }
        }
    }

    #[test]
    fn host_mst_is_spanning_single_owner() {
        let h = HostNetwork::random_metric(12, 5);
        let net = host_mst_network(&h);
        let w = h.as_weights();
        let g = net.graph(&w);
        assert!(gncg_graph::components::is_connected(&g));
        assert_eq!(g.num_edges(), 11);
        for u in 0..12 {
            assert!(net.strategy(u).len() <= 1);
        }
    }

    #[test]
    fn corollary_5_2_bounds_certified() {
        let h = HostNetwork::random_nonmetric(8, 0.3, 4.0, 11);
        let w = h.as_weights();
        let net = host_mst_network(&h);
        let r = certify(&w, &net, 2.0, &SolverConfig::bounds_only());
        assert!(r.beta_upper <= 7.0 + 1e-6, "beta {}", r.beta_upper);
        assert!(r.gamma_upper <= 7.0 + 1e-6, "gamma {}", r.gamma_upper);
    }

    #[test]
    fn algorithm1_on_host_sparse() {
        let h = HostNetwork::random_metric(15, 7);
        let r = algorithm1_on_host(
            &h,
            1.0,
            HostAlgorithmParams {
                b: 1.0,
                c: 0,
                t: 1.5,
            },
        );
        assert!(!r.clustered);
        assert!(r.t_measured <= 1.5 + 1e-9);
        let w = h.as_weights();
        let g = r.network.graph(&w);
        assert!(gncg_graph::components::is_connected(&g));
    }

    #[test]
    fn algorithm1_on_host_cluster_branch() {
        // host with a tight cluster: nodes 0..10 mutually close, nodes
        // 10..13 far away
        let n = 13;
        let mut w = vec![vec![0.0; n]; n];
        for (u, row) in w.iter_mut().enumerate() {
            for (v, cell) in row.iter_mut().enumerate() {
                if u == v {
                    continue;
                }
                // any pair involving a far node is far apart (metric-ish)
                *cell = if u < 10 && v < 10 { 0.1 } else { 10.0 };
            }
        }
        let h = HostNetwork::from_matrix(w);
        let r = algorithm1_on_host(
            &h,
            1.0,
            HostAlgorithmParams {
                b: 20.0,
                c: 4,
                t: 2.0,
            },
        );
        assert!(r.clustered);
        let wts = h.as_weights();
        let g = r.network.graph(&wts);
        assert!(gncg_graph::components::is_connected(&g));
    }
}
