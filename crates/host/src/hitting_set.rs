//! The Theorem 2.2 reduction: social optimum computation in the M-GNCG
//! is NP-hard, via HITTING SET.
//!
//! Given elements `U = {u_1..u_n}` and sets `S = {S_1..S_m}`, the
//! reduction builds a complete metric host `H`:
//!
//! * node classes: `s`, `t`, one node per element, `c` copies of each set
//!   node; every one of these is inflated into a star with `q − 1` extra
//!   leaves,
//! * base edges `E₁`: `s—uᵢ` of length `x`; `uᵢ—s_pj` when `uᵢ ∈ S_p`,
//!   `s_ij—t`, and all star edges, of length 1,
//! * all other pairs get the metric closure of `(V, E₁)`,
//! * constants: `q = 1 + ⌈√α/2⌉`, `x = 2 + 4q²/α`, `c = 1 + ⌈αx/(4q²)⌉`.
//!
//! The optimum network then contains all length-1 edges, hits every set,
//! and uses exactly `k` length-x edges where `k` is the minimum hitting
//! set size; its social cost is `2kα + 2nq²(x+2) + Δ`.
//!
//! Exact verification of the optimum over the full edge space is
//! impossible beyond a handful of nodes (the reduction inflates the
//! instance), so the harness verifies the proof's *structure* instead:
//! among the candidate family {all length-1 edges + length-x edges of a
//! hitting set `𝓗`}, the social cost is affine in `|𝓗|` with slope `2α`,
//! so the min-cost candidate is exactly the minimum hitting set. See
//! `candidate_network` and the tests.

use crate::HostNetwork;
use gncg_graph::{apsp, Graph};

/// A HITTING SET instance.
#[derive(Debug, Clone)]
pub struct HittingSetInstance {
    /// Number of elements (elements are `0..n_elements`).
    pub n_elements: usize,
    /// The sets, each a list of element indices.
    pub sets: Vec<Vec<usize>>,
}

impl HittingSetInstance {
    /// Validate and build.
    pub fn new(n_elements: usize, sets: Vec<Vec<usize>>) -> Self {
        assert!(n_elements >= 1 && !sets.is_empty());
        for s in &sets {
            assert!(!s.is_empty(), "empty sets are unhittable");
            assert!(s.iter().all(|&e| e < n_elements));
        }
        Self { n_elements, sets }
    }

    /// Is `hs` a hitting set?
    pub fn is_hitting(&self, hs: &[usize]) -> bool {
        self.sets.iter().all(|s| s.iter().any(|e| hs.contains(e)))
    }

    /// Exact minimum hitting set by subset enumeration (n ≤ 20).
    pub fn minimum_hitting_set(&self) -> Vec<usize> {
        let n = self.n_elements;
        assert!(n <= 20, "exact hitting set limited to 20 elements");
        let mut best: Option<Vec<usize>> = None;
        for mask in 0u64..(1 << n) {
            let hs: Vec<usize> = (0..n).filter(|&e| mask & (1 << e) != 0).collect();
            if self.is_hitting(&hs) {
                match &best {
                    Some(b) if b.len() <= hs.len() => {}
                    _ => best = Some(hs),
                }
            }
        }
        best.expect("non-empty sets are always hittable by all elements")
    }
}

/// Node roles in the reduction host.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Role {
    /// The source node `s`.
    S,
    /// The sink node `t`.
    T,
    /// Element node `uᵢ`.
    Element(usize),
    /// Set node copy `s_{ij}` (set index, copy index).
    SetCopy(usize, usize),
    /// Leaf `v^i` of the star centred at `center` (index into `nodes`).
    Leaf { center: usize },
}

/// The constructed reduction instance.
#[derive(Debug)]
pub struct Reduction {
    /// The complete metric host network.
    pub host: HostNetwork,
    /// Role of each node.
    pub roles: Vec<Role>,
    /// The base (length-1 / length-x) edges `E₁`.
    pub base_edges: Vec<(usize, usize, f64)>,
    /// `s`'s node index.
    pub s: usize,
    /// Element node indices.
    pub elements: Vec<usize>,
    /// The reduction constants.
    pub q: usize,
    /// Length of the s–element edges.
    pub x: f64,
    /// Number of copies of each set node.
    pub c: usize,
    /// The α the constants were derived for.
    pub alpha: f64,
}

/// Build the Theorem 2.2 reduction host for a HITTING SET instance and a
/// given `α`.
pub fn build_reduction(inst: &HittingSetInstance, alpha: f64) -> Reduction {
    assert!(alpha > 0.0);
    let q = 1 + ((alpha.sqrt() / 2.0).ceil() as usize);
    let x = 2.0 + 4.0 * (q * q) as f64 / alpha;
    let c = 1 + ((alpha * x / (4.0 * (q * q) as f64)).ceil() as usize);

    let mut roles: Vec<Role> = Vec::new();
    let s = 0usize;
    roles.push(Role::S);
    let t = 1usize;
    roles.push(Role::T);
    let elements: Vec<usize> = (0..inst.n_elements)
        .map(|e| {
            roles.push(Role::Element(e));
            roles.len() - 1
        })
        .collect();
    let mut set_copies: Vec<Vec<usize>> = Vec::new();
    for (i, _) in inst.sets.iter().enumerate() {
        let mut copies = Vec::new();
        for j in 0..c {
            roles.push(Role::SetCopy(i, j));
            copies.push(roles.len() - 1);
        }
        set_copies.push(copies);
    }
    // star leaves: q − 1 per V₁ node
    let v1_count = roles.len();
    let mut leaves_of: Vec<Vec<usize>> = vec![Vec::new(); v1_count];
    for (center, leaves) in leaves_of.iter_mut().enumerate() {
        for _ in 0..(q - 1) {
            roles.push(Role::Leaf { center });
            leaves.push(roles.len() - 1);
        }
    }
    let n = roles.len();

    // base edges E₁
    let mut base_edges: Vec<(usize, usize, f64)> = Vec::new();
    for &e in &elements {
        base_edges.push((s, e, x));
    }
    for (i, set) in inst.sets.iter().enumerate() {
        for &el in set {
            for &copy in &set_copies[i] {
                base_edges.push((elements[el], copy, 1.0));
            }
        }
        for &copy in &set_copies[i] {
            base_edges.push((copy, t, 1.0));
        }
    }
    for (center, leaves) in leaves_of.iter().enumerate() {
        for &leaf in leaves {
            base_edges.push((center, leaf, 1.0));
        }
    }

    // metric closure of (V, E₁) defines every other pair
    let g1 = Graph::from_edges(n, &base_edges);
    let closure = apsp::all_pairs(&g1);
    let host = HostNetwork::from_dist_matrix(closure);

    Reduction {
        host,
        roles,
        base_edges,
        s,
        elements,
        q,
        x,
        c,
        alpha,
    }
}

impl Reduction {
    /// Number of nodes in the host.
    pub fn len(&self) -> usize {
        self.roles.len()
    }

    /// True iff the host is a single node (never, by construction).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The candidate network of the proof for a hitting set `hs`: all
    /// base length-1 edges plus the length-x edges `s—uᵢ` for `i ∈ hs`.
    pub fn candidate_network(&self, hs: &[usize]) -> Graph {
        let n = self.len();
        let mut g = Graph::new(n);
        for &(a, b, w) in &self.base_edges {
            if w == 1.0 {
                g.add_edge(a, b, w);
            }
        }
        for &e in hs {
            g.add_edge(self.s, self.elements[e], self.x);
        }
        g
    }

    /// Social cost of a candidate network under the reduction's α.
    pub fn candidate_cost(&self, hs: &[usize]) -> f64 {
        let g = self.candidate_network(hs);
        gncg_game::cost::social_cost_of_graph(&g, self.alpha)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example() -> HittingSetInstance {
        // U = {0,1,2}, S = {{0,1},{1,2},{2}} — min hitting set {1,2}? no:
        // {2} must be hit by 2; {0,1} by 0 or 1 → {2,0} or {2,1}, size 2
        HittingSetInstance::new(3, vec![vec![0, 1], vec![1, 2], vec![2]])
    }

    #[test]
    fn minimum_hitting_set_exact() {
        let inst = example();
        let hs = inst.minimum_hitting_set();
        assert_eq!(hs.len(), 2);
        assert!(inst.is_hitting(&hs));
    }

    #[test]
    fn single_set_hit_by_one() {
        let inst = HittingSetInstance::new(4, vec![vec![2, 3]]);
        assert_eq!(inst.minimum_hitting_set().len(), 1);
    }

    #[test]
    fn reduction_constants_match_paper() {
        let inst = example();
        let alpha = 1.0;
        let r = build_reduction(&inst, alpha);
        // q = 1 + ceil(sqrt(1)/2) = 2; x = 2 + 16/1 = 18; c = 1 + ceil(18/16) = 3
        assert_eq!(r.q, 2);
        assert!((r.x - 18.0).abs() < 1e-12);
        assert_eq!(r.c, 3);
    }

    #[test]
    fn host_is_metric_closure_of_base() {
        let inst = HittingSetInstance::new(2, vec![vec![0], vec![1]]);
        let r = build_reduction(&inst, 1.0);
        assert!(r.host.is_metric());
        // s–element distance is x directly (never shorter via sets:
        // element–set–t–... paths are longer for the paper's constants)
        for &e in &r.elements {
            assert!(r.host.weight(r.s, e) <= r.x + 1e-9);
        }
    }

    #[test]
    fn candidate_cost_affine_in_hitting_set_size() {
        // the proof's accounting: SC = 2kα + const over hitting sets of
        // size k — check cost differences between one- and two-element
        // supersets equal 2α
        let inst = HittingSetInstance::new(2, vec![vec![0, 1]]);
        let alpha = 1.0;
        let r = build_reduction(&inst, alpha);
        let c1 = r.candidate_cost(&[0]);
        let c2 = r.candidate_cost(&[0, 1]);
        assert!(
            (c2 - c1 - 2.0 * alpha).abs() < 1e-6,
            "cost difference {} expected {}",
            c2 - c1,
            2.0 * alpha
        );
    }

    #[test]
    fn minimum_hitting_set_candidate_is_cheapest() {
        let inst = example();
        let alpha = 1.0;
        let r = build_reduction(&inst, alpha);
        let min_hs = inst.minimum_hitting_set();
        let min_cost = r.candidate_cost(&min_hs);
        // every hitting set candidate costs at least the minimum's cost
        for mask in 1u64..(1 << inst.n_elements) {
            let hs: Vec<usize> = (0..inst.n_elements)
                .filter(|&e| mask & (1 << e) != 0)
                .collect();
            if inst.is_hitting(&hs) {
                assert!(
                    r.candidate_cost(&hs) >= min_cost - 1e-6,
                    "hitting set {hs:?} cheaper than minimum"
                );
            }
        }
    }

    #[test]
    fn non_hitting_candidate_disconnects_nothing_but_costs_more() {
        // without hitting set S_2 = {2}, adding the missing edge s-u2
        // pays off: the proof's "every set will be hit" step
        let inst = example();
        let alpha = 1.0;
        let r = build_reduction(&inst, alpha);
        // {0} doesn't hit {2} nor {1,2}; candidate still connected
        // (paths via other element / metric edges don't exist in the
        // candidate network — it only has base edges; s connects via u0)
        let partial = r.candidate_cost(&[0]);
        let fixed = r.candidate_cost(&[0, 2]);
        assert!(
            fixed < partial,
            "hitting the uncovered set should pay: {fixed} vs {partial}"
        );
    }

    #[test]
    fn leaves_count() {
        let inst = example();
        let r = build_reduction(&inst, 1.0);
        // V1 = 2 + 3 elements + 3 sets * c copies
        let v1 = 2 + 3 + 3 * r.c;
        assert_eq!(r.len(), v1 * r.q);
        let leaf_count = r
            .roles
            .iter()
            .filter(|r| matches!(r, Role::Leaf { .. }))
            .count();
        assert_eq!(leaf_count, v1 * (r.q - 1));
    }

    #[test]
    #[should_panic(expected = "unhittable")]
    fn empty_set_rejected() {
        HittingSetInstance::new(2, vec![vec![]]);
    }
}
