//! The `H_M` long-edge filter (Section 5.1).
//!
//! Starting from the longest edge `uv`: if `d_H(u, v) < w(u, v)` remove
//! `uv` from `H`; repeat until every edge is checked. The surviving
//! network `H_M` is connected and *metric* in the sense that every kept
//! edge realizes the shortest-path distance between its endpoints:
//! `w(u,v) = d_{H_M}(u,v)`.

use crate::HostNetwork;
use gncg_graph::{dijkstra, Graph};

/// Apply the filter to a complete host network; returns `H_M` as a graph
/// (not necessarily complete).
pub fn hm_filter(h: &HostNetwork) -> Graph {
    let n = h.len();
    let mut g = Graph::complete(n, |i, j| h.weight(i, j));
    let mut edges = g.edges();
    // longest first
    edges.sort_by(|a, b| b.2.partial_cmp(&a.2).unwrap());
    for (u, v, w) in edges {
        // check the distance without this edge: if strictly shorter than
        // w, the edge is dominated and removed
        g.remove_edge(u, v);
        let alt = dijkstra::pair_distance(&g, u, v);
        if alt >= w - 1e-12 {
            g.add_edge(u, v, w);
        }
    }
    g
}

/// Check the defining property of `H_M`: each surviving edge realizes
/// the shortest-path distance between its endpoints.
pub fn is_shortest_path_network(g: &Graph) -> bool {
    for (u, v, w) in g.edges() {
        let d = dijkstra::pair_distance(g, u, v);
        if (d - w).abs() > 1e-9 * w.max(1.0) {
            return false;
        }
    }
    true
}

/// The metric induced by `H_M` (distances in the filtered network),
/// which equals the original host's metric closure.
pub fn hm_metric(h: &HostNetwork) -> gncg_graph::DistMatrix {
    gncg_graph::apsp::all_pairs(&hm_filter(h))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filter_keeps_metric_host_complete() {
        // in a strict-metric host no edge is dominated
        let h = HostNetwork::random_metric(8, 2);
        // random_metric uses a closure, so some edges exactly equal path
        // sums; the filter keeps ties, so the result realizes the same
        // metric even if a few redundant edges are kept
        let g = hm_filter(&h);
        assert!(is_shortest_path_network(&g));
        let m = gncg_graph::apsp::all_pairs(&g);
        let cl = h.metric_closure();
        for u in 0..8 {
            for v in 0..8 {
                assert!((m[u][v] - cl[u][v]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn filter_removes_dominated_edges_nonmetric() {
        let h = HostNetwork::random_nonmetric(10, 0.1, 10.0, 7);
        let g = hm_filter(&h);
        assert!(g.num_edges() < 45, "nothing was filtered?");
        assert!(gncg_graph::components::is_connected(&g));
        assert!(is_shortest_path_network(&g));
    }

    #[test]
    fn hm_metric_equals_host_closure() {
        let h = HostNetwork::random_nonmetric(9, 0.5, 5.0, 3);
        let m = hm_metric(&h);
        let cl = h.metric_closure();
        for u in 0..9 {
            for v in 0..9 {
                assert!(
                    (m[u][v] - cl[u][v]).abs() < 1e-9,
                    "pair ({u},{v}): {} vs {}",
                    m[u][v],
                    cl[u][v]
                );
            }
        }
    }

    #[test]
    fn triangle_with_dominated_edge() {
        // explicit 3-node example: w(0,2) = 5 dominated by 1 + 1
        let h = HostNetwork::from_matrix(vec![
            vec![0.0, 1.0, 5.0],
            vec![1.0, 0.0, 1.0],
            vec![5.0, 1.0, 0.0],
        ]);
        let g = hm_filter(&h);
        assert!(!g.has_edge(0, 2));
        assert!(g.has_edge(0, 1) && g.has_edge(1, 2));
    }

    #[test]
    fn two_nodes_keep_their_edge() {
        let h = HostNetwork::from_matrix(vec![vec![0.0, 3.0], vec![3.0, 0.0]]);
        let g = hm_filter(&h);
        assert!(g.has_edge(0, 1));
    }
}
