//! The Generalized Network Creation Game on weighted host networks
//! (Section 5 of the paper) and the Theorem 2.2 hardness reduction.
//!
//! * [`host`] — complete weighted host networks: builders (random metric,
//!   random non-metric, tree metric), metric closure, metricity checks,
//! * [`hm_filter`] — the `H_M` long-edge filter that turns an arbitrary
//!   host into a metric one (Section 5.1),
//! * [`corollaries`] — Corollary 5.1 (shortest-path subnetwork is an
//!   (α+1, α/2+1)-NE), Corollary 5.2 (host MST is (n−1, n−1)),
//!   Corollary 5.3 (Algorithm 1 on `H_M`),
//! * [`hitting_set`] — the Theorem 2.2 reduction from HITTING SET plus
//!   an exact hitting-set solver and the empirical verification used by
//!   the harness,
//! * [`poa`] — Theorem 5.4 machinery: equilibrium discovery on hosts and
//!   the `2(α+1)` PoA bound check.

pub mod corollaries;
pub mod hitting_set;
pub mod hm_filter;
pub mod host;
pub mod poa;

pub use host::HostNetwork;
