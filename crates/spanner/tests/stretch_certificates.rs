//! First integration tests for `gncg-spanner`: every construction's
//! measured certificate ([`gncg_spanner::cert::certify`]) is validated
//! against an independent brute-force stretch computation (Floyd–
//! Warshall over the explicit edge list, written here from scratch so it
//! shares no code with the Dijkstra-based `gncg_graph::stretch`), and
//! against the constructions' theoretical guarantees:
//!
//! * Θ-graph: stretch ≤ `theta_stretch_bound(cones)` for cones ≥ 9,
//! * Yao graph: stretch ≤ `yao_stretch_bound(cones)` for cones ≥ 7,
//! * greedy spanner: stretch ≤ t by construction,
//! * ownership: `distribute` covers each edge exactly once and respects
//!   the certified `max_ownership`.

use gncg_geometry::{generators, PointSet};
use gncg_graph::Graph;
use gncg_spanner::cert::{certify, distribute};
use gncg_spanner::{build, SpannerKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Brute-force max stretch `max_{u<v} d_S(u,v) / ‖u,v‖` via
/// Floyd–Warshall; ∞ if some pair of distinct points is disconnected.
#[allow(clippy::needless_range_loop)] // matrix indexing is the FW idiom
fn brute_force_stretch(g: &Graph, ps: &PointSet) -> f64 {
    let n = g.len();
    let mut d = vec![vec![f64::INFINITY; n]; n];
    for (i, row) in d.iter_mut().enumerate() {
        row[i] = 0.0;
    }
    for (u, v, w) in g.edges() {
        if w < d[u][v] {
            d[u][v] = w;
            d[v][u] = w;
        }
    }
    for k in 0..n {
        for i in 0..n {
            for j in 0..n {
                let via = d[i][k] + d[k][j];
                if via < d[i][j] {
                    d[i][j] = via;
                }
            }
        }
    }
    let mut worst: f64 = 1.0;
    for u in 0..n {
        for v in (u + 1)..n {
            let b = ps.dist(u, v);
            if b > 0.0 {
                worst = worst.max(d[u][v] / b);
            } else if d[u][v].is_infinite() {
                return f64::INFINITY;
            }
        }
    }
    worst
}

/// Certified stretch must agree with the brute-force value up to
/// floating-point noise in the two APSP formulations.
fn check_cert(kind: SpannerKind, ps: &PointSet, bound: Option<f64>, what: &str) {
    let g = build(ps, kind);
    let cert = certify(&g, ps);
    let brute = brute_force_stretch(&g, ps);
    assert!(
        cert.stretch.is_finite(),
        "{what}: spanner disconnected (stretch ∞)"
    );
    assert!(
        (cert.stretch - brute).abs() <= 1e-9 * brute.max(1.0),
        "{what}: certified stretch {} != brute-force {}",
        cert.stretch,
        brute
    );
    if let Some(t) = bound {
        assert!(
            cert.stretch <= t + 1e-9,
            "{what}: stretch {} exceeds theoretical bound {t}",
            cert.stretch
        );
    }
    // basic certificate consistency
    assert_eq!(cert.num_edges, g.num_edges(), "{what}: edge count");
    assert_eq!(cert.max_degree, g.max_degree(), "{what}: max degree");
    assert!(
        (cert.total_weight - g.total_weight()).abs() <= 1e-9 * g.total_weight().max(1.0),
        "{what}: total weight"
    );
    // every edge distributed exactly once, within the certified ownership
    let owned = distribute(&g);
    assert_eq!(
        owned.len(),
        g.num_edges(),
        "{what}: distribute covers edges"
    );
    let mut per_agent = vec![0usize; g.len()];
    for &(owner, to, w) in &owned {
        assert!(g.has_edge(owner, to), "{what}: distributed non-edge");
        assert_eq!(g.edge_weight(owner, to), Some(w), "{what}: weight drift");
        per_agent[owner] += 1;
    }
    let max_owned = per_agent.iter().copied().max().unwrap_or(0);
    assert!(
        max_owned <= cert.max_ownership,
        "{what}: agent owns {max_owned} > certified {}",
        cert.max_ownership
    );
}

fn random_points(n: usize, seed: u64) -> PointSet {
    generators::uniform_unit_square(n, seed)
}

#[test]
fn theta_graph_certificates() {
    for seed in 0..6u64 {
        let mut rng = StdRng::seed_from_u64(900 + seed);
        let n = rng.gen_range(4..14);
        let ps = random_points(n, seed);
        for cones in [9usize, 12, 16] {
            check_cert(
                SpannerKind::Theta { cones },
                &ps,
                Some(gncg_spanner::theta::theta_stretch_bound(cones)),
                &format!("theta seed {seed} n={n} cones={cones}"),
            );
        }
    }
}

#[test]
fn yao_graph_certificates() {
    for seed in 0..6u64 {
        let mut rng = StdRng::seed_from_u64(1900 + seed);
        let n = rng.gen_range(4..14);
        let ps = random_points(n, seed);
        for cones in [7usize, 10, 14] {
            check_cert(
                SpannerKind::Yao { cones },
                &ps,
                Some(gncg_spanner::yao::yao_stretch_bound(cones)),
                &format!("yao seed {seed} n={n} cones={cones}"),
            );
        }
    }
}

#[test]
fn greedy_spanner_certificates() {
    for seed in 0..6u64 {
        let mut rng = StdRng::seed_from_u64(2900 + seed);
        let n = rng.gen_range(4..16);
        let ps = random_points(n, seed);
        for t in [1.2f64, 1.5, 2.0, 3.0] {
            check_cert(
                SpannerKind::Greedy { t },
                &ps,
                Some(t),
                &format!("greedy seed {seed} n={n} t={t}"),
            );
        }
    }
}

#[test]
fn complete_graph_has_stretch_one() {
    let ps = random_points(9, 4242);
    let g = build(&ps, SpannerKind::Complete);
    let cert = certify(&g, &ps);
    assert!((cert.stretch - 1.0).abs() <= 1e-12);
    assert_eq!(cert.num_edges, 9 * 8 / 2);
    assert_eq!(brute_force_stretch(&g, &ps), cert.stretch);
}

#[test]
fn collinear_points_certify() {
    // degenerate geometry: evenly spaced points on a planar line — the
    // direct neighbour chain is the only shortest-path structure
    let ps = PointSet::new(
        (0..8)
            .map(|i| vec![0.5 * f64::from(i), 0.25].into())
            .collect(),
    );
    for kind in [
        SpannerKind::Greedy { t: 1.5 },
        SpannerKind::Theta { cones: 9 },
        SpannerKind::Yao { cones: 8 },
    ] {
        check_cert(kind, &ps, None, &format!("collinear {kind:?}"));
    }
}
