//! Yao graphs in the plane.
//!
//! Like the Θ-graph, but in each cone the *Euclidean-nearest* point is
//! selected (rather than nearest bisector projection). For `k` cones of
//! angle θ = 2π/k < π/3 the Yao graph is a t-spanner with
//! `t = 1/(1 − 2·sin(θ/2))`.

use gncg_geometry::PointSet;
use gncg_graph::Graph;

/// Stretch guaranteed by a Yao graph with `cones` cones (needs θ < π/3,
/// i.e. `cones ≥ 7`).
pub fn yao_stretch_bound(cones: usize) -> f64 {
    assert!(cones >= 7, "yao bound needs >= 7 cones");
    let theta = 2.0 * std::f64::consts::PI / cones as f64;
    1.0 / (1.0 - 2.0 * (theta / 2.0).sin())
}

/// Build the Yao graph of a planar point set with `cones` cones.
pub fn yao_graph(ps: &PointSet, cones: usize) -> Graph {
    assert_eq!(ps.dim(), 2, "yao graphs are implemented for d = 2");
    assert!(cones >= 2);
    let n = ps.len();
    let theta = 2.0 * std::f64::consts::PI / cones as f64;
    let mut g = Graph::new(n);
    for u in 0..n {
        let mut best: Vec<Option<(f64, usize)>> = vec![None; cones];
        let pu = ps.point(u);
        for v in 0..n {
            if v == u {
                continue;
            }
            let pv = ps.point(v);
            let dx = pv[0] - pu[0];
            let dy = pv[1] - pu[1];
            if dx == 0.0 && dy == 0.0 {
                if u < v {
                    g.add_edge(u, v, 0.0);
                }
                continue;
            }
            let angle = dy.atan2(dx).rem_euclid(2.0 * std::f64::consts::PI);
            let cone = ((angle / theta) as usize).min(cones - 1);
            let dist = (dx * dx + dy * dy).sqrt();
            match best[cone] {
                Some((d, _)) if d <= dist => {}
                _ => best[cone] = Some((dist, v)),
            }
        }
        for slot in best.into_iter().flatten() {
            let (_, v) = slot;
            g.add_edge(u, v, ps.dist(u, v));
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use gncg_geometry::generators;
    use gncg_graph::stretch;

    #[test]
    fn yao_graph_respects_theory_stretch() {
        for seed in 0..5u64 {
            let ps = generators::uniform_unit_square(70, seed + 100);
            let cones = 12;
            let g = yao_graph(&ps, cones);
            let bound = yao_stretch_bound(cones);
            let measured = stretch::stretch(&g, &ps);
            assert!(
                measured <= bound + 1e-9,
                "seed {seed}: measured {measured} > bound {bound}"
            );
        }
    }

    #[test]
    fn yao_connected_on_circle() {
        let ps = generators::circle(30, 2.0);
        let g = yao_graph(&ps, 8);
        assert!(gncg_graph::components::is_connected(&g));
    }

    #[test]
    fn yao_and_theta_may_differ() {
        // sanity: on a generic instance the two constructions are not the
        // same graph (they pick different cone representatives)
        let ps = generators::uniform_unit_square(60, 55);
        let y = yao_graph(&ps, 9);
        let t = crate::theta::theta_graph(&ps, 9);
        assert_ne!(y.edges(), t.edges());
    }

    #[test]
    fn stretch_bound_monotone() {
        assert!(yao_stretch_bound(24) < yao_stretch_bound(8));
    }

    #[test]
    #[should_panic(expected = "d = 2")]
    fn rejects_non_planar_input() {
        let ps = generators::uniform_cube(10, 3, 1);
        yao_graph(&ps, 10);
    }
}
