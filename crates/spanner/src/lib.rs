//! Geometric t-spanner constructions.
//!
//! Algorithm 1 of the paper consumes a *k-degree t-spanner* (or more
//! generally a *k-distributable* one: edges assignable so every agent
//! owns ≤ k). This crate provides the constructions used by the
//! reproduction:
//!
//! * [`greedy`] — the path-greedy spanner; for fixed dimension and t > 1
//!   it has bounded degree and is existentially optimal (Filtser &
//!   Solomon), our stand-in for [49, Thm 10.1.3],
//! * [`theta`] — the Θ-graph in ℝ² (out-degree ≤ cones by construction),
//! * [`yao`] — the Yao graph in ℝ²,
//! * [`grid`] — nearest-neighbour grid edges, a √d-spanner on integer
//!   grids (Theorem 3.13),
//! * [`cert`] — per-instance certification: measured stretch, max degree,
//!   max ownership.
//!
//! All constructions return a plain [`gncg_graph::Graph`]; ownership
//! assignment is a separate step (see `gncg_graph::orientation` and
//! [`cert::distribute`]).

pub mod cert;
pub mod greedy;
pub mod grid;
pub mod theta;
pub mod yao;

pub use grid::GridIndex;

use gncg_geometry::PointSet;
use gncg_graph::Graph;

/// Which spanner construction to use inside Algorithm 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SpannerKind {
    /// Path-greedy spanner with stretch target `t` (> 1).
    Greedy { t: f64 },
    /// Θ-graph with `cones` cones (ℝ² only; `cones ≥ 9` guarantees a
    /// finite stretch bound).
    Theta { cones: usize },
    /// Yao graph with `cones` cones (ℝ² only).
    Yao { cones: usize },
    /// Nearest-neighbour grid edges (integer grid point sets only).
    Grid,
    /// The complete graph (stretch 1, degree n−1).
    Complete,
}

/// Build the selected spanner over (a subset of) a point set.
///
/// `subset` holds the point indices to span; the returned graph is over
/// `0..subset.len()` in subset order.
pub fn build_on_subset(ps: &PointSet, subset: &[usize], kind: SpannerKind) -> Graph {
    let sub = sub_pointset(ps, subset);
    build(&sub, kind)
}

/// Build the selected spanner over the full point set.
pub fn build(ps: &PointSet, kind: SpannerKind) -> Graph {
    match kind {
        SpannerKind::Greedy { t } => greedy::greedy_spanner(ps, t),
        SpannerKind::Theta { cones } => theta::theta_graph(ps, cones),
        SpannerKind::Yao { cones } => yao::yao_graph(ps, cones),
        SpannerKind::Grid => grid::grid_spanner(ps),
        SpannerKind::Complete => Graph::complete(ps.len(), |i, j| ps.dist(i, j)),
    }
}

/// Extract the sub-point-set induced by `subset` (preserving order).
pub fn sub_pointset(ps: &PointSet, subset: &[usize]) -> PointSet {
    assert!(!subset.is_empty());
    PointSet::with_norm(
        subset.iter().map(|&i| ps.point(i).clone()).collect(),
        ps.norm(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use gncg_geometry::generators;

    #[test]
    fn build_dispatches_all_kinds() {
        let ps = generators::uniform_unit_square(25, 3);
        for kind in [
            SpannerKind::Greedy { t: 1.5 },
            SpannerKind::Theta { cones: 10 },
            SpannerKind::Yao { cones: 10 },
            SpannerKind::Complete,
        ] {
            let g = build(&ps, kind);
            assert!(gncg_graph::components::is_connected(&g), "{kind:?}");
        }
    }

    #[test]
    fn subset_build_uses_local_indices() {
        let ps = generators::uniform_unit_square(20, 4);
        let subset: Vec<usize> = (5..15).collect();
        let g = build_on_subset(&ps, &subset, SpannerKind::Greedy { t: 2.0 });
        assert_eq!(g.len(), 10);
        assert!(gncg_graph::components::is_connected(&g));
    }

    #[test]
    fn sub_pointset_preserves_coordinates() {
        let ps = generators::line(6, 5.0);
        let sub = sub_pointset(&ps, &[0, 3, 5]);
        assert_eq!(sub.len(), 3);
        assert_eq!(sub.point(1)[0], 3.0);
        assert_eq!(sub.point(2)[0], 5.0);
    }
}
