//! The path-greedy t-spanner.
//!
//! Consider all pairs in non-decreasing distance order; add the edge
//! `{u, v}` iff the spanner built so far has `d(u,v) > t·‖u,v‖`. The
//! result is a t-spanner by construction, and for fixed dimension and
//! t > 1 its degree and weight are bounded by constants depending only on
//! t and d (Filtser & Solomon 2020). This is the workhorse spanner used
//! by Algorithm 1; its `(k, t)` are *measured* per instance by
//! [`crate::cert`] instead of assuming book constants.
//!
//! Complexity: O(n²) pairs, each answered with a Dijkstra run truncated
//! at `t·‖u,v‖`. Good to a few thousand points — the scale of the
//! paper-level experiments.

use gncg_geometry::PointSet;
use gncg_graph::{dijkstra, Graph};

/// Build the path-greedy t-spanner of `ps` (requires `t ≥ 1`).
///
/// Co-located points (distance 0) are connected with zero-weight edges to
/// the first point of their location class, keeping the output connected
/// without inflating degrees.
pub fn greedy_spanner(ps: &PointSet, t: f64) -> Graph {
    assert!(t >= 1.0, "stretch factor must be >= 1, got {t}");
    let n = ps.len();
    let mut g = Graph::new(n);
    if n == 1 {
        return g;
    }
    let mut pairs: Vec<(f64, usize, usize)> = Vec::with_capacity(n * (n - 1) / 2);
    for u in 0..n {
        for v in (u + 1)..n {
            pairs.push((ps.dist(u, v), u, v));
        }
    }
    pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
    for (w, u, v) in pairs {
        if w == 0.0 {
            // co-located: connect only if not already in the same
            // zero-distance component (cheap check via direct edge scan)
            if !g.has_edge(u, v) && dijkstra::pair_distance(&g, u, v) > 0.0 {
                g.add_edge(u, v, 0.0);
            }
            continue;
        }
        let limit = t * w;
        let d = dijkstra::distances_with_limit(&g, u, limit);
        if d[v] > limit * (1.0 + gncg_geometry::EPS) {
            g.add_edge(u, v, w);
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use gncg_geometry::generators;
    use gncg_graph::stretch;

    #[test]
    fn greedy_is_a_t_spanner() {
        for (seed, t) in [(1u64, 1.2), (2, 1.5), (3, 2.0), (4, 3.0)] {
            let ps = generators::uniform_unit_square(60, seed);
            let g = greedy_spanner(&ps, t);
            assert!(
                stretch::is_t_spanner(&g, &ps, t),
                "seed {seed} t {t}: stretch {}",
                stretch::stretch(&g, &ps)
            );
        }
    }

    #[test]
    fn larger_t_gives_sparser_graph() {
        let ps = generators::uniform_unit_square(80, 9);
        let tight = greedy_spanner(&ps, 1.1);
        let loose = greedy_spanner(&ps, 3.0);
        assert!(loose.num_edges() < tight.num_edges());
    }

    #[test]
    fn t_one_gives_complete_graph_generic_points() {
        // with t = 1 and points in general position every pair needs its
        // own edge
        let ps = generators::uniform_unit_square(12, 5);
        let g = greedy_spanner(&ps, 1.0);
        assert_eq!(g.num_edges(), 12 * 11 / 2);
    }

    #[test]
    fn collinear_points_give_path_for_any_t() {
        let ps = generators::line(10, 9.0);
        let g = greedy_spanner(&ps, 1.0);
        // consecutive edges suffice even at t = 1 on a line
        assert_eq!(g.num_edges(), 9);
        for i in 0..9 {
            assert!(g.has_edge(i, i + 1));
        }
    }

    #[test]
    fn bounded_degree_in_practice() {
        // for fixed t the greedy spanner's max degree stays small as n
        // grows — the property Algorithm 1 relies on
        let mut prev_max = 0;
        for n in [50, 100, 200] {
            let ps = generators::uniform_unit_square(n, 77);
            let g = greedy_spanner(&ps, 1.5);
            let md = g.max_degree();
            assert!(md <= 16, "n={n}: max degree {md}");
            prev_max = prev_max.max(md);
        }
        assert!(prev_max > 0);
    }

    #[test]
    fn colocated_points_connected_with_zero_edges() {
        let ps = generators::triangle_clusters(3, 0.0);
        let g = greedy_spanner(&ps, 2.0);
        assert!(gncg_graph::components::is_connected(&g));
        let zero_edges = g.edges().iter().filter(|&&(_, _, w)| w == 0.0).count();
        assert_eq!(zero_edges, 6); // 2 per cluster of 3 points
    }

    #[test]
    fn grid_greedy_connected_and_spanning() {
        let ps = generators::integer_grid(&[4, 4]);
        let g = greedy_spanner(&ps, 1.5);
        assert!(stretch::is_t_spanner(&g, &ps, 1.5));
    }

    #[test]
    fn single_point() {
        let ps = gncg_geometry::PointSet::new(vec![gncg_geometry::Point::d1(0.0)]);
        let g = greedy_spanner(&ps, 2.0);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    #[should_panic(expected = ">= 1")]
    fn rejects_t_below_one() {
        let ps = generators::line(3, 1.0);
        greedy_spanner(&ps, 0.5);
    }
}
