//! The grid spanner of Theorem 3.13, plus the [`GridIndex`] spatial
//! hash used for O(neighbourhood) candidate generation.
//!
//! On an integer grid point set `P = ℤᵈ ∩ B`, the set `N` of
//! nearest-neighbour edges (axis-aligned, length 1) is a √d-spanner
//! (Cauchy–Schwarz, as in the paper's proof), bipartite, and every vertex
//! has ≤ 2d such edges.

use gncg_geometry::PointSet;
use gncg_graph::Graph;
use std::collections::{BTreeMap, HashMap};

/// Build the nearest-neighbour grid graph over an integer grid point
/// set. Panics if any coordinate is not (within 1e-9 of) an integer.
pub fn grid_spanner(ps: &PointSet) -> Graph {
    let n = ps.len();
    let dim = ps.dim();
    let mut index: HashMap<Vec<i64>, usize> = HashMap::with_capacity(n);
    for i in 0..n {
        let coords: Vec<i64> = ps
            .point(i)
            .coords()
            .iter()
            .map(|&c| {
                let r = c.round();
                assert!(
                    (c - r).abs() < 1e-9,
                    "grid spanner needs integer coordinates, got {c}"
                );
                r as i64
            })
            .collect();
        let prev = index.insert(coords, i);
        assert!(prev.is_none(), "duplicate grid point");
    }
    let mut g = Graph::new(n);
    for (coords, &i) in index.iter().map(|(c, i)| (c.clone(), i)) {
        for axis in 0..dim {
            let mut nb = coords.clone();
            nb[axis] += 1;
            if let Some(&j) = index.get(&nb) {
                g.add_edge(i, j, 1.0);
            }
        }
    }
    g
}

/// The √d stretch bound the grid spanner satisfies on full integer grids.
pub fn grid_stretch_bound(dim: usize) -> f64 {
    (dim as f64).sqrt()
}

/// Uniform-grid spatial hash over a point set: buckets points into
/// axis-aligned cells of a fixed side length and answers radius and
/// k-nearest queries by scanning only the cells a query ball can
/// touch.
///
/// Everything about the index is **deterministic**: cells live in a
/// `BTreeMap` (no hash-iteration-order dependence), bucket member
/// lists are ascending by construction, radius results come back
/// sorted ascending by index, and k-nearest ties break by smaller
/// index. Query results are *exact* (every candidate is confirmed
/// against the point set's own metric), so callers may treat a radius
/// query as the complete set `{v ≠ u : ‖u,v‖ ≤ r}` — the completeness
/// half of the candidate-generation soundness argument.
#[derive(Debug, Clone)]
pub struct GridIndex {
    cell: f64,
    dim: usize,
    cells: BTreeMap<Vec<i64>, Vec<usize>>,
}

impl GridIndex {
    /// Build an index with the given cell side length (> 0, finite).
    pub fn build(ps: &PointSet, cell: f64) -> Self {
        assert!(cell > 0.0 && cell.is_finite(), "cell side must be positive");
        let dim = ps.dim();
        let mut cells: BTreeMap<Vec<i64>, Vec<usize>> = BTreeMap::new();
        for i in 0..ps.len() {
            let key = Self::key_of(ps.point(i).coords(), cell);
            cells.entry(key).or_default().push(i); // ascending: i grows
        }
        Self { cell, dim, cells }
    }

    /// Build with a density-derived cell side: the bounding-box
    /// diagonal divided by √n, clamped away from zero for degenerate
    /// (single-cell) inputs. A reasonable default when the caller has
    /// no better estimate of typical query radii.
    pub fn with_auto_cell(ps: &PointSet) -> Self {
        let dim = ps.dim();
        let mut lo = vec![f64::INFINITY; dim];
        let mut hi = vec![f64::NEG_INFINITY; dim];
        for p in ps.points() {
            for (axis, &c) in p.coords().iter().enumerate() {
                lo[axis] = lo[axis].min(c);
                hi[axis] = hi[axis].max(c);
            }
        }
        let diag = lo
            .iter()
            .zip(&hi)
            .map(|(a, b)| (b - a) * (b - a))
            .sum::<f64>()
            .sqrt();
        let cell = (diag / (ps.len() as f64).sqrt()).max(1e-12);
        Self::build(ps, cell)
    }

    /// The cell side length.
    #[inline]
    pub fn cell(&self) -> f64 {
        self.cell
    }

    fn key_of(coords: &[f64], cell: f64) -> Vec<i64> {
        coords.iter().map(|&c| (c / cell).floor() as i64).collect()
    }

    /// All `v ≠ u` with `‖u, v‖ ≤ radius`, pushed onto `out` sorted
    /// ascending by index (`out` is cleared first). Exact and
    /// complete: candidates come from every cell the ball can touch
    /// and are confirmed against `ps.dist`. A non-finite or huge
    /// radius degrades gracefully to a full (still exact) scan.
    pub fn within_radius(&self, ps: &PointSet, u: usize, radius: f64, out: &mut Vec<usize>) {
        out.clear();
        if radius.is_nan() || radius < 0.0 {
            return; // empty ball
        }
        let coords = ps.point(u).coords();
        let check = |cand: usize, out: &mut Vec<usize>| {
            if cand != u && ps.dist(u, cand) <= radius {
                out.push(cand);
            }
        };
        // Cells the ball can touch, per axis. When that box would
        // enumerate more cells than exist (estimated in f64 so huge
        // radii just overflow to "no"), walk the occupied cells
        // directly instead.
        let boxed = if radius.is_finite() {
            let per_axis = (2.0 * radius / self.cell).floor() + 2.0;
            per_axis.powi(self.dim as i32) <= self.cells.len() as f64
        } else {
            false
        };
        if !boxed {
            for members in self.cells.values() {
                for &cand in members {
                    check(cand, out);
                }
            }
            out.sort_unstable();
            return;
        }
        let lo: Vec<i64> = coords
            .iter()
            .map(|&c| ((c - radius) / self.cell).floor() as i64)
            .collect();
        let hi: Vec<i64> = coords
            .iter()
            .map(|&c| ((c + radius) / self.cell).floor() as i64)
            .collect();
        let mut key = lo.clone();
        'cells: loop {
            if let Some(members) = self.cells.get(&key) {
                for &cand in members {
                    check(cand, out);
                }
            }
            // odometer increment over the per-axis ranges
            for axis in 0..self.dim {
                if key[axis] < hi[axis] {
                    key[axis] += 1;
                    continue 'cells;
                }
                key[axis] = lo[axis];
            }
            break;
        }
        out.sort_unstable();
    }

    /// The `k` points nearest to `u` (excluding `u` itself), ordered
    /// by distance with ties broken by smaller index. Fewer than `k`
    /// entries when the set is small. Uses an expanding ring search
    /// over the grid, so typical cost is O(k), not O(n).
    pub fn nearest_k(&self, ps: &PointSet, u: usize, k: usize) -> Vec<usize> {
        let n = ps.len();
        if k == 0 || n <= 1 {
            return Vec::new();
        }
        let mut radius = self.cell;
        let mut found = Vec::new();
        loop {
            self.within_radius(ps, u, radius, &mut found);
            // `found` is complete for the ball, so once it holds ≥ k
            // points every true k-nearest (dist ≤ the k-th smallest
            // ≤ radius) is among them.
            if found.len() >= k || found.len() == n - 1 {
                break;
            }
            radius *= 2.0;
        }
        found.sort_by(|&a, &b| {
            ps.dist(u, a)
                .partial_cmp(&ps.dist(u, b))
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.cmp(&b))
        });
        found.truncate(k);
        found
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gncg_geometry::generators;
    use gncg_graph::stretch;

    #[test]
    fn grid_2d_stretch_at_most_sqrt2() {
        let ps = generators::integer_grid(&[4, 5]);
        let g = grid_spanner(&ps);
        let s = stretch::stretch(&g, &ps);
        assert!(s <= 2f64.sqrt() + 1e-9, "stretch {s}");
    }

    #[test]
    fn grid_3d_stretch_at_most_sqrt3() {
        let ps = generators::integer_grid(&[2, 2, 2]);
        let g = grid_spanner(&ps);
        let s = stretch::stretch(&g, &ps);
        assert!(s <= 3f64.sqrt() + 1e-9, "stretch {s}");
    }

    #[test]
    fn degree_at_most_2d() {
        let ps = generators::integer_grid(&[5, 5]);
        let g = grid_spanner(&ps);
        assert!(g.max_degree() <= 4);
        let ps3 = generators::integer_grid(&[2, 2, 2]);
        let g3 = grid_spanner(&ps3);
        assert!(g3.max_degree() <= 6);
    }

    #[test]
    fn edge_count_of_full_grid() {
        // (b1+1)(b2+1) grid: edges = b1(b2+1) + b2(b1+1)
        let ps = generators::integer_grid(&[3, 4]);
        let g = grid_spanner(&ps);
        assert_eq!(g.num_edges(), 3 * 5 + 4 * 4);
    }

    #[test]
    fn grid_graph_is_bipartite() {
        let ps = generators::integer_grid(&[3, 3]);
        let g = grid_spanner(&ps);
        assert!(gncg_graph::orientation::two_colour(&g).is_some());
    }

    #[test]
    fn one_dimensional_grid_is_path() {
        let ps = generators::integer_grid(&[6]);
        let g = grid_spanner(&ps);
        assert_eq!(g.num_edges(), 6);
        assert!(gncg_graph::components::is_connected(&g));
        assert!(stretch::stretch(&g, &ps) <= 1.0 + 1e-9);
    }

    #[test]
    #[should_panic(expected = "integer coordinates")]
    fn rejects_non_integer_points() {
        let ps = generators::uniform_unit_square(5, 1);
        grid_spanner(&ps);
    }

    fn brute_within(ps: &gncg_geometry::PointSet, u: usize, r: f64) -> Vec<usize> {
        (0..ps.len())
            .filter(|&v| v != u && ps.dist(u, v) <= r)
            .collect()
    }

    #[test]
    fn within_radius_matches_brute_force() {
        for seed in 0..4 {
            let ps = generators::uniform_unit_square(60, 100 + seed);
            for &cell in &[0.05, 0.2, 1.5] {
                let idx = GridIndex::build(&ps, cell);
                let mut out = Vec::new();
                for u in 0..ps.len() {
                    for &r in &[0.0, 0.1, 0.37, 2.0] {
                        idx.within_radius(&ps, u, r, &mut out);
                        assert_eq!(out, brute_within(&ps, u, r), "seed {seed} u {u} r {r}");
                    }
                }
            }
        }
    }

    #[test]
    fn within_radius_handles_degenerate_radii() {
        let ps = generators::uniform_unit_square(20, 7);
        let idx = GridIndex::with_auto_cell(&ps);
        let mut out = Vec::new();
        idx.within_radius(&ps, 0, f64::INFINITY, &mut out);
        assert_eq!(out, (1..20).collect::<Vec<_>>());
        idx.within_radius(&ps, 0, -1.0, &mut out);
        assert!(out.is_empty());
        idx.within_radius(&ps, 0, f64::NAN, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn nearest_k_matches_brute_force() {
        for seed in 0..4 {
            let ps = generators::uniform_unit_square(50, 300 + seed);
            let idx = GridIndex::with_auto_cell(&ps);
            for u in 0..ps.len() {
                for &k in &[1usize, 3, 7, 49, 60] {
                    let got = idx.nearest_k(&ps, u, k);
                    let mut want: Vec<usize> = (0..ps.len()).filter(|&v| v != u).collect();
                    want.sort_by(|&a, &b| {
                        ps.dist(u, a)
                            .partial_cmp(&ps.dist(u, b))
                            .unwrap()
                            .then_with(|| a.cmp(&b))
                    });
                    want.truncate(k);
                    assert_eq!(got, want, "seed {seed} u {u} k {k}");
                }
            }
        }
    }

    #[test]
    fn nearest_k_breaks_ties_by_index_on_grids() {
        // Integer grid: lots of exactly-equal distances.
        let ps = generators::integer_grid(&[4, 4]);
        let idx = GridIndex::build(&ps, 1.0);
        for u in 0..ps.len() {
            let got = idx.nearest_k(&ps, u, 6);
            let mut want: Vec<usize> = (0..ps.len()).filter(|&v| v != u).collect();
            want.sort_by(|&a, &b| {
                ps.dist(u, a)
                    .partial_cmp(&ps.dist(u, b))
                    .unwrap()
                    .then_with(|| a.cmp(&b))
            });
            want.truncate(6);
            assert_eq!(got, want, "u {u}");
        }
    }

    #[test]
    fn coincident_points_are_indexed() {
        use gncg_geometry::{Point, PointSet};
        let ps = PointSet::new(vec![
            Point::d2(0.5, 0.5),
            Point::d2(0.5, 0.5),
            Point::d2(2.0, 2.0),
        ]);
        let idx = GridIndex::build(&ps, 1.0);
        let mut out = Vec::new();
        idx.within_radius(&ps, 0, 0.0, &mut out);
        assert_eq!(out, vec![1]);
        assert_eq!(idx.nearest_k(&ps, 2, 2), vec![0, 1]);
    }
}
