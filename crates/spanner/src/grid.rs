//! The grid spanner of Theorem 3.13.
//!
//! On an integer grid point set `P = ℤᵈ ∩ B`, the set `N` of
//! nearest-neighbour edges (axis-aligned, length 1) is a √d-spanner
//! (Cauchy–Schwarz, as in the paper's proof), bipartite, and every vertex
//! has ≤ 2d such edges.

use gncg_geometry::PointSet;
use gncg_graph::Graph;
use std::collections::HashMap;

/// Build the nearest-neighbour grid graph over an integer grid point
/// set. Panics if any coordinate is not (within 1e-9 of) an integer.
pub fn grid_spanner(ps: &PointSet) -> Graph {
    let n = ps.len();
    let dim = ps.dim();
    let mut index: HashMap<Vec<i64>, usize> = HashMap::with_capacity(n);
    for i in 0..n {
        let coords: Vec<i64> = ps
            .point(i)
            .coords()
            .iter()
            .map(|&c| {
                let r = c.round();
                assert!(
                    (c - r).abs() < 1e-9,
                    "grid spanner needs integer coordinates, got {c}"
                );
                r as i64
            })
            .collect();
        let prev = index.insert(coords, i);
        assert!(prev.is_none(), "duplicate grid point");
    }
    let mut g = Graph::new(n);
    for (coords, &i) in index.iter().map(|(c, i)| (c.clone(), i)) {
        for axis in 0..dim {
            let mut nb = coords.clone();
            nb[axis] += 1;
            if let Some(&j) = index.get(&nb) {
                g.add_edge(i, j, 1.0);
            }
        }
    }
    g
}

/// The √d stretch bound the grid spanner satisfies on full integer grids.
pub fn grid_stretch_bound(dim: usize) -> f64 {
    (dim as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gncg_geometry::generators;
    use gncg_graph::stretch;

    #[test]
    fn grid_2d_stretch_at_most_sqrt2() {
        let ps = generators::integer_grid(&[4, 5]);
        let g = grid_spanner(&ps);
        let s = stretch::stretch(&g, &ps);
        assert!(s <= 2f64.sqrt() + 1e-9, "stretch {s}");
    }

    #[test]
    fn grid_3d_stretch_at_most_sqrt3() {
        let ps = generators::integer_grid(&[2, 2, 2]);
        let g = grid_spanner(&ps);
        let s = stretch::stretch(&g, &ps);
        assert!(s <= 3f64.sqrt() + 1e-9, "stretch {s}");
    }

    #[test]
    fn degree_at_most_2d() {
        let ps = generators::integer_grid(&[5, 5]);
        let g = grid_spanner(&ps);
        assert!(g.max_degree() <= 4);
        let ps3 = generators::integer_grid(&[2, 2, 2]);
        let g3 = grid_spanner(&ps3);
        assert!(g3.max_degree() <= 6);
    }

    #[test]
    fn edge_count_of_full_grid() {
        // (b1+1)(b2+1) grid: edges = b1(b2+1) + b2(b1+1)
        let ps = generators::integer_grid(&[3, 4]);
        let g = grid_spanner(&ps);
        assert_eq!(g.num_edges(), 3 * 5 + 4 * 4);
    }

    #[test]
    fn grid_graph_is_bipartite() {
        let ps = generators::integer_grid(&[3, 3]);
        let g = grid_spanner(&ps);
        assert!(gncg_graph::orientation::two_colour(&g).is_some());
    }

    #[test]
    fn one_dimensional_grid_is_path() {
        let ps = generators::integer_grid(&[6]);
        let g = grid_spanner(&ps);
        assert_eq!(g.num_edges(), 6);
        assert!(gncg_graph::components::is_connected(&g));
        assert!(stretch::stretch(&g, &ps) <= 1.0 + 1e-9);
    }

    #[test]
    #[should_panic(expected = "integer coordinates")]
    fn rejects_non_integer_points() {
        let ps = generators::uniform_unit_square(5, 1);
        grid_spanner(&ps);
    }
}
