//! Per-instance spanner certification.
//!
//! The paper's Theorem 3.6/3.7 bound is a function of the spanner's
//! degree bound `k` and stretch `t`. Rather than citing construction-time
//! constants, the harness *measures* `(k, t)` on the concrete spanner and
//! plugs the measured values into the bound — making each experiment
//! self-certifying.

use gncg_geometry::PointSet;
use gncg_graph::{orientation, stretch, Graph};

/// Certificate for a spanner over a point set.
#[derive(Debug, Clone, PartialEq)]
pub struct SpannerCert {
    /// Measured stretch `max d_S(u,v)/‖u,v‖` (∞ if disconnected).
    pub stretch: f64,
    /// Maximum (undirected) degree.
    pub max_degree: usize,
    /// Maximum edges owned by any agent under the bounded-out-degree
    /// orientation — the `k` of a *k-distributable* spanner.
    pub max_ownership: usize,
    /// Number of edges.
    pub num_edges: usize,
    /// Total edge weight.
    pub total_weight: f64,
}

/// Measure the certificate of `g` over `ps`.
pub fn certify(g: &Graph, ps: &PointSet) -> SpannerCert {
    assert_eq!(g.len(), ps.len());
    let oriented = orientation::bounded_outdegree_orientation(g);
    SpannerCert {
        stretch: stretch::stretch(g, ps),
        max_degree: g.max_degree(),
        max_ownership: orientation::max_ownership(g.len(), &oriented),
        num_edges: g.num_edges(),
        total_weight: g.total_weight(),
    }
}

/// Assign ownership with bounded out-degree (the *k-distributable*
/// assignment). Returns `(owner, other, weight)` triples covering every
/// edge once.
pub fn distribute(g: &Graph) -> Vec<(usize, usize, f64)> {
    orientation::bounded_outdegree_orientation(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{build, SpannerKind};
    use gncg_geometry::generators;

    #[test]
    fn cert_of_greedy_spanner() {
        let ps = generators::uniform_unit_square(50, 2);
        let g = build(&ps, SpannerKind::Greedy { t: 1.5 });
        let cert = certify(&g, &ps);
        assert!(cert.stretch <= 1.5 + 1e-9);
        assert!(cert.max_ownership <= cert.max_degree);
        assert_eq!(cert.num_edges, g.num_edges());
        assert!(cert.total_weight > 0.0);
    }

    #[test]
    fn cert_of_complete_graph() {
        let ps = generators::uniform_unit_square(12, 2);
        let g = build(&ps, SpannerKind::Complete);
        let cert = certify(&g, &ps);
        assert!((cert.stretch - 1.0).abs() < 1e-9);
        assert_eq!(cert.max_degree, 11);
        // the complete graph distributes with ownership ~ (n-1)/2
        assert!(cert.max_ownership <= 11);
    }

    #[test]
    fn distribute_covers_all_edges() {
        let ps = generators::uniform_unit_square(30, 6);
        let g = build(&ps, SpannerKind::Greedy { t: 2.0 });
        let owned = distribute(&g);
        assert_eq!(owned.len(), g.num_edges());
    }

    #[test]
    fn ownership_bounded_on_theta_graph() {
        let ps = generators::uniform_unit_square(100, 13);
        let g = build(&ps, SpannerKind::Theta { cones: 10 });
        let cert = certify(&g, &ps);
        // degeneracy orientation is at least as good as the cone count
        assert!(cert.max_ownership <= 10, "ownership {}", cert.max_ownership);
    }
}
