//! Θ-graphs in the plane.
//!
//! Partition the plane around each point `u` into `k` cones of angle
//! θ = 2π/k; in each non-empty cone, connect `u` to the point whose
//! *projection onto the cone's bisector* is nearest. For `k > 8` the
//! Θ-graph is a t-spanner with `t = 1/(cos θ − sin θ)`; out-degree is at
//! most `k` by construction, making it naturally k-distributable (every
//! point owns its cone edges).
//!
//! O(k·n²) construction — the simple scan, within the paper's O(n²)
//! budget for constant k.

use gncg_geometry::PointSet;
use gncg_graph::Graph;

/// Stretch factor guaranteed by a Θ-graph with `cones` cones (valid for
/// `cones ≥ 9`, i.e. θ < π/4).
pub fn theta_stretch_bound(cones: usize) -> f64 {
    assert!(cones >= 9, "theta bound needs >= 9 cones");
    let theta = 2.0 * std::f64::consts::PI / cones as f64;
    1.0 / (theta.cos() - theta.sin())
}

/// Build the Θ-graph of a planar point set with `cones` cones.
pub fn theta_graph(ps: &PointSet, cones: usize) -> Graph {
    assert_eq!(ps.dim(), 2, "theta graphs are implemented for d = 2");
    assert!(cones >= 2);
    let n = ps.len();
    let theta = 2.0 * std::f64::consts::PI / cones as f64;
    let mut g = Graph::new(n);
    for u in 0..n {
        // best candidate per cone: (projection length, index)
        let mut best: Vec<Option<(f64, usize)>> = vec![None; cones];
        let pu = ps.point(u);
        for v in 0..n {
            if v == u {
                continue;
            }
            let pv = ps.point(v);
            let dx = pv[0] - pu[0];
            let dy = pv[1] - pu[1];
            if dx == 0.0 && dy == 0.0 {
                // co-located point: connect directly with a zero edge
                if u < v {
                    g.add_edge(u, v, 0.0);
                }
                continue;
            }
            let angle = dy.atan2(dx).rem_euclid(2.0 * std::f64::consts::PI);
            let cone = ((angle / theta) as usize).min(cones - 1);
            let bisector = (cone as f64 + 0.5) * theta;
            let proj = dx * bisector.cos() + dy * bisector.sin();
            match best[cone] {
                Some((p, _)) if p <= proj => {}
                _ => best[cone] = Some((proj, v)),
            }
        }
        for slot in best.into_iter().flatten() {
            let (_, v) = slot;
            g.add_edge(u, v, ps.dist(u, v));
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use gncg_geometry::generators;
    use gncg_graph::stretch;

    #[test]
    fn theta_graph_respects_theory_stretch() {
        for seed in 0..5u64 {
            let ps = generators::uniform_unit_square(70, seed);
            let cones = 12;
            let g = theta_graph(&ps, cones);
            let bound = theta_stretch_bound(cones);
            let measured = stretch::stretch(&g, &ps);
            assert!(
                measured <= bound + 1e-9,
                "seed {seed}: measured {measured} > bound {bound}"
            );
        }
    }

    #[test]
    fn out_degree_bound_is_respected() {
        // undirected degree can exceed k, but the *edges added per point*
        // (ownership) is ≤ k; verify via the edge count
        let ps = generators::uniform_unit_square(100, 8);
        let cones = 10;
        let g = theta_graph(&ps, cones);
        assert!(g.num_edges() <= 100 * cones);
        assert!(gncg_graph::components::is_connected(&g));
    }

    #[test]
    fn stretch_bound_decreases_in_cones() {
        assert!(theta_stretch_bound(32) < theta_stretch_bound(12));
        assert!(theta_stretch_bound(12) < theta_stretch_bound(9));
    }

    #[test]
    fn colocated_points_connected() {
        let ps = generators::triangle_clusters(2, 0.0);
        let g = theta_graph(&ps, 10);
        assert!(gncg_graph::components::is_connected(&g));
    }

    #[test]
    fn two_points_single_edge() {
        let ps = gncg_geometry::PointSet::new(vec![
            gncg_geometry::Point::d2(0.0, 0.0),
            gncg_geometry::Point::d2(1.0, 1.0),
        ]);
        let g = theta_graph(&ps, 10);
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    #[should_panic(expected = "d = 2")]
    fn rejects_non_planar_input() {
        let ps = generators::uniform_cube(10, 3, 1);
        theta_graph(&ps, 10);
    }
}
