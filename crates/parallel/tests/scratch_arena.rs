//! Property suite for the `gncg_parallel::arena` scratch recycler: the
//! zero-steady-state-allocation contract, panic safety under
//! `catch_unwind`, and the high-water accounting the `GNCG_ARENA_DEBUG`
//! tripwires build on.

use gncg_parallel::arena::{self, ArenaStats, Scratch};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// A scratch type with observable reset behaviour.
#[derive(Default)]
struct Probe {
    log: Vec<u64>,
    resets: u64,
}

impl Scratch for Probe {
    fn reset(&mut self) {
        self.log.clear();
        self.resets += 1;
    }
}

#[test]
fn rent_return_reuses_the_same_buffer() {
    // Warm a Probe into the pool, then observe its reset counter grow
    // across rents — proof the identical object is being recycled.
    drop(arena::rent::<Probe>());
    let gens: Vec<u64> = (0..4)
        .map(|i| {
            let mut p = arena::rent::<Probe>();
            p.log.push(i);
            p.resets
        })
        .collect();
    // monotonically increasing reset counts on a recycled object
    assert!(gens.windows(2).all(|w| w[1] == w[0] + 1), "{gens:?}");
}

#[test]
fn no_growth_after_warmup() {
    // Steady-state kernel shape: one f64 buffer, one usize buffer,
    // rented and returned per iteration. After the first iteration the
    // pool must serve every rent without allocating.
    let warmed: ArenaStats = {
        let mut a = arena::rent_vec(64, f64::INFINITY);
        let mut b = arena::rent_vec(64, usize::MAX);
        a[0] = 1.0;
        b[0] = 1;
        drop((a, b));
        arena::thread_stats()
    };
    for i in 0..100 {
        let mut a = arena::rent_vec(64, f64::INFINITY);
        let mut b = arena::rent_vec(64, usize::MAX);
        a[i % 64] = i as f64;
        b[i % 64] = i;
    }
    let after = arena::thread_stats();
    assert_eq!(
        after.fresh_allocs, warmed.fresh_allocs,
        "steady state must not allocate: {after:?} vs warmup {warmed:?}"
    );
    assert_eq!(after.rents, warmed.rents + 200);
    assert_eq!(after.returns, warmed.returns + 200);
}

#[test]
fn high_water_tracks_simultaneous_leases() {
    arena::reset_thread_stats();
    {
        let _a = arena::rent::<Vec<f64>>();
        {
            let _b = arena::rent::<Vec<f64>>();
            let _c = arena::rent::<Vec<usize>>();
            assert_eq!(arena::thread_stats().outstanding, 3);
        }
        assert_eq!(arena::thread_stats().outstanding, 1);
    }
    let s = arena::thread_stats();
    assert_eq!(s.outstanding, 0);
    assert!(s.high_water >= 3, "{s:?}");
}

#[test]
fn panicking_holder_returns_buffers_reset() {
    // A panic while leases are live must unwind through their Drop
    // impls: the buffers come back to the pool cleared, and the
    // outstanding count returns to its pre-panic level.
    let before = arena::thread_stats();
    let r = catch_unwind(AssertUnwindSafe(|| {
        let mut v = arena::rent_vec(32, 1.0f64);
        v[7] = 42.0;
        panic!("job poisoned");
    }));
    assert!(r.is_err());
    let after = arena::thread_stats();
    assert_eq!(after.outstanding, before.outstanding, "lease leaked");
    assert_eq!(after.returns, before.returns + 1);
    // the recycled buffer is observably reset
    let v = arena::rent::<Vec<f64>>();
    assert!(v.is_empty(), "poisoned worker leaked contents into pool");
}

#[test]
fn rent_vec_contents_are_history_independent() {
    {
        let mut v = arena::rent_vec(16, 9.9f64);
        for x in v.iter_mut() {
            *x = -1.0;
        }
    }
    let v = arena::rent_vec(16, f64::INFINITY);
    assert!(v.iter().all(|x| x.is_infinite()));
    let shorter = arena::rent_vec(4, 0.0f64);
    assert_eq!(shorter.len(), 4);
}

#[test]
fn per_thread_pools_are_independent() {
    // Buffers warmed on this thread must not affect a fresh thread's
    // stats, and vice versa.
    drop(arena::rent_vec(8, 0u32));
    let child = std::thread::spawn(|| {
        let s0 = arena::thread_stats();
        assert_eq!(s0, ArenaStats::default(), "fresh thread, fresh arena");
        drop(arena::rent_vec(8, 0u32));
        arena::thread_stats().fresh_allocs
    })
    .join()
    .expect("child thread");
    assert_eq!(child, 1, "child pool starts cold");
}

#[test]
fn parallel_workers_each_warm_their_own_pool() {
    // The intended integration shape: per-worker rents inside
    // parallel_map_with. Results must be bit-identical to the
    // sequential expression regardless of pooling.
    let out = gncg_parallel::parallel_map_with(
        500,
        || (),
        |(), i| {
            let mut buf = arena::rent_vec(33, 0.0f64);
            for (k, x) in buf.iter_mut().enumerate() {
                *x = (i * 31 + k) as f64;
            }
            buf.iter().sum::<f64>()
        },
    );
    let seq: Vec<f64> = (0..500)
        .map(|i| (0..33).map(|k| (i * 31 + k) as f64).sum())
        .collect();
    assert_eq!(out, seq);
}
