//! A small persistent thread pool for long-lived experiment drivers.
//!
//! The free functions in the crate root spawn scoped threads per call,
//! which is fine for coarse kernels (APSP over thousands of sources) but
//! wasteful when a driver issues many tiny parallel sections (e.g. the
//! best-response dynamics loop certifies every intermediate network).
//! [`ThreadPool`] keeps workers parked between submissions.
//!
//! The pool intentionally exposes only a *blocking* `run` API: submit a
//! job set, wait for completion. The callers in this workspace never need
//! futures or detached tasks, and a blocking API keeps lifetimes simple.
//!
//! # Panic policy
//!
//! Every job runs under `catch_unwind`. A panicking job decrements
//! `pending` like any other (so [`ThreadPool::wait`] can never block
//! forever on a dead job), its payload is recorded, and the *first*
//! recorded panic is re-raised on the caller of `wait()` once the batch
//! has drained. The pool itself stays usable afterwards.

use crate::{fault, PanicSlot};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// A persistent pool of worker threads executing closures of type
/// `Box<dyn FnOnce() + Send>`.
pub struct ThreadPool {
    inner: Arc<Inner>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

struct Inner {
    queue: Mutex<Queue>,
    cond: Condvar,
    pending: AtomicUsize,
    done_mutex: Mutex<()>,
    done_cond: Condvar,
    panic_slot: PanicSlot,
}

struct Queue {
    jobs: std::collections::VecDeque<Job>,
    shutdown: bool,
}

type Job = Box<dyn FnOnce() + Send + 'static>;

impl ThreadPool {
    /// Create a pool with `threads` workers (at least 1).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let inner = Arc::new(Inner {
            queue: Mutex::new(Queue {
                jobs: std::collections::VecDeque::new(),
                shutdown: false,
            }),
            cond: Condvar::new(),
            pending: AtomicUsize::new(0),
            done_mutex: Mutex::new(()),
            done_cond: Condvar::new(),
            panic_slot: PanicSlot::new(),
        });
        let workers = (0..threads)
            .map(|_| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || worker_loop(inner))
            })
            .collect();
        Self { inner, workers }
    }

    /// Create a pool sized by [`crate::num_threads`].
    pub fn with_default_threads() -> Self {
        Self::new(crate::num_threads())
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Submit a job. The job runs on some worker at an unspecified time.
    pub fn submit<F: FnOnce() + Send + 'static>(&self, f: F) {
        self.inner.pending.fetch_add(1, Ordering::SeqCst);
        {
            let mut q = self.inner.queue.lock().expect("pool queue poisoned");
            q.jobs.push_back(Box::new(f));
        }
        self.inner.cond.notify_one();
    }

    /// Block until every submitted job has finished.
    ///
    /// If any job of the batch panicked, the first recorded panic is
    /// re-raised here after the batch has fully drained; the pool
    /// remains usable for subsequent batches.
    pub fn wait(&self) {
        {
            let mut guard = self.inner.done_mutex.lock().expect("pool mutex poisoned");
            while self.inner.pending.load(Ordering::SeqCst) != 0 {
                guard = self
                    .inner
                    .done_cond
                    .wait(guard)
                    .expect("pool mutex poisoned");
            }
        }
        self.inner.panic_slot.propagate();
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut q = self.inner.queue.lock().expect("pool queue poisoned");
            q.shutdown = true;
        }
        self.inner.cond.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(inner: Arc<Inner>) {
    loop {
        let job = {
            let mut q = inner.queue.lock().expect("pool queue poisoned");
            loop {
                if let Some(job) = q.jobs.pop_front() {
                    break job;
                }
                if q.shutdown {
                    return;
                }
                q = inner.cond.wait(q).expect("pool queue poisoned");
            }
        };
        // injection point *before* the job is invoked: an injected fault
        // here is absorbed and the job still runs, exercising the
        // catch/decrement path without losing work
        let _ = catch_unwind(fault::fault_point);
        gncg_trace::incr(gncg_trace::Counter::PoolJobs);
        if let Err(payload) = catch_unwind(AssertUnwindSafe(job)) {
            if !fault::is_injected(&*payload) {
                inner.panic_slot.record(payload);
            }
        }
        // the pool's threads outlive any scope, so counters recorded by
        // this job must merge before the submitter can observe wait();
        // flushing ahead of the decrement guarantees that ordering
        gncg_trace::flush_thread();
        // the decrement runs regardless of how the job ended — this is
        // the invariant that keeps `wait()` from blocking forever
        if inner.pending.fetch_sub(1, Ordering::SeqCst) == 1 {
            let _guard = inner.done_mutex.lock().expect("pool mutex poisoned");
            inner.done_cond.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn runs_all_jobs() {
        let pool = ThreadPool::new(4);
        let counter = Arc::new(AtomicU64::new(0));
        for _ in 0..1000 {
            let c = Arc::clone(&counter);
            pool.submit(move || {
                c.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.wait();
        assert_eq!(counter.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn wait_with_no_jobs_returns() {
        let pool = ThreadPool::new(2);
        pool.wait();
    }

    #[test]
    fn reusable_across_batches() {
        let pool = ThreadPool::new(3);
        let counter = Arc::new(AtomicU64::new(0));
        for batch in 0..5 {
            for _ in 0..100 {
                let c = Arc::clone(&counter);
                pool.submit(move || {
                    c.fetch_add(1, Ordering::Relaxed);
                });
            }
            pool.wait();
            assert_eq!(counter.load(Ordering::Relaxed), (batch + 1) * 100);
        }
    }

    #[test]
    fn single_thread_pool_works() {
        let pool = ThreadPool::new(1);
        let counter = Arc::new(AtomicU64::new(0));
        for _ in 0..50 {
            let c = Arc::clone(&counter);
            pool.submit(move || {
                c.fetch_add(2, Ordering::Relaxed);
            });
        }
        pool.wait();
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn panicking_job_does_not_deadlock_wait_and_is_surfaced() {
        let pool = ThreadPool::new(4);
        let counter = Arc::new(AtomicU64::new(0));
        for i in 0..100 {
            let c = Arc::clone(&counter);
            pool.submit(move || {
                if i == 50 {
                    panic!("job boom");
                }
                c.fetch_add(1, Ordering::Relaxed);
            });
        }
        // regression: this used to block forever (the panicking job
        // skipped the `pending` decrement); now it must return and
        // re-raise the job's panic
        let r = catch_unwind(AssertUnwindSafe(|| pool.wait()));
        let payload = r.expect_err("panic must surface at wait()");
        assert_eq!(payload.downcast_ref::<&str>().copied(), Some("job boom"));
        assert_eq!(counter.load(Ordering::Relaxed), 99);

        // the pool stays usable after a panicked batch
        for _ in 0..20 {
            let c = Arc::clone(&counter);
            pool.submit(move || {
                c.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.wait();
        assert_eq!(counter.load(Ordering::Relaxed), 119);
    }

    #[test]
    fn only_first_panic_is_kept_per_batch() {
        let pool = ThreadPool::new(2);
        for _ in 0..10 {
            pool.submit(|| panic!("many booms"));
        }
        let r = catch_unwind(AssertUnwindSafe(|| pool.wait()));
        assert!(r.is_err());
        // next batch starts clean
        pool.submit(|| {});
        pool.wait();
    }

    #[test]
    fn injected_faults_never_lose_jobs() {
        let _guard = crate::fault::test_lock();
        let before = crate::fault::injection_probability();
        crate::fault::set_injection_probability(1.0);
        let pool = ThreadPool::new(4);
        let counter = Arc::new(AtomicU64::new(0));
        for _ in 0..100 {
            let c = Arc::clone(&counter);
            pool.submit(move || {
                c.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.wait();
        crate::fault::set_injection_probability(before);
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn drop_shuts_down_cleanly() {
        let pool = ThreadPool::new(4);
        let counter = Arc::new(AtomicU64::new(0));
        for _ in 0..10 {
            let c = Arc::clone(&counter);
            pool.submit(move || {
                c.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.wait();
        drop(pool);
        assert_eq!(counter.load(Ordering::Relaxed), 10);
    }
}
