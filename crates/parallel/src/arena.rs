//! Per-thread scratch arena: typed buffer recycling for the hot kernels.
//!
//! The evaluation kernels (CSR Dijkstra, batched move scoring, the
//! grid-candidate probe loop) historically allocated fresh `Vec`s per
//! call — cheap individually, dominant in aggregate once a dynamics run
//! makes millions of calls. [`rent`] hands out a [`Lease`] over a
//! recycled buffer from a thread-local pool; dropping the lease resets
//! the buffer (capacity retained) and returns it to the pool, so the
//! steady state performs **zero** heap allocation.
//!
//! Design constraints, in order:
//!
//! * **Bit-identity.** The arena recycles *capacity*, never contents:
//!   [`Scratch::reset`] runs on every return, and every renter
//!   re-initializes length and values exactly as the old `vec![…]`
//!   call did. No numeric path can observe whether a buffer is fresh
//!   or recycled.
//! * **Panic safety.** Return-on-drop means an unwinding worker still
//!   returns its buffers (reset first), so a poisoned job never leaks
//!   stale arena state into the next job. The fault-injection suite
//!   soaks this path.
//! * **Thread affinity.** A [`Lease`] is `!Send`: it returns to the
//!   pool of the thread that rented it. Worker threads spawned by
//!   [`crate::parallel_map_with`] each grow their own small pool that
//!   dies with the thread; the persistent main thread and
//!   [`crate::pool::ThreadPool`] workers reuse across calls.
//!
//! Debug tripwires (`GNCG_ARENA_DEBUG=1`, read once through
//! [`gncg_config::env::arena_debug`]): every lease carries a token
//! registered in a per-thread live set, and a return whose token is not
//! live — a double return or a return smuggled across threads via
//! unsafe code — panics instead of corrupting the pool.

use std::any::{Any, TypeId};
use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::marker::PhantomData;
use std::ops::{Deref, DerefMut};

/// A recyclable scratch value. `reset` must erase all *observable*
/// content (lengths, logical state) while retaining capacity; renters
/// must not rely on anything `reset` leaves behind except capacity.
pub trait Scratch: 'static {
    /// Clear observable contents, keeping allocated capacity.
    fn reset(&mut self);
}

impl<T: 'static> Scratch for Vec<T> {
    fn reset(&mut self) {
        self.clear();
    }
}

/// Allocation counters of one thread's arena. `fresh_allocs` stops
/// growing once every kernel's buffer set has warmed up — the
/// zero-steady-state-allocation property the test suite asserts.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Rents served by constructing a brand-new value (pool miss).
    pub fresh_allocs: u64,
    /// Total rents served.
    pub rents: u64,
    /// Total leases returned.
    pub returns: u64,
    /// Leases currently outstanding on this thread.
    pub outstanding: usize,
    /// Maximum simultaneously outstanding leases ever seen (high-water).
    pub high_water: usize,
}

#[derive(Default)]
struct Pool {
    free: HashMap<TypeId, Vec<Box<dyn Any>>>,
    stats: ArenaStats,
    /// Live lease tokens, tracked only under `GNCG_ARENA_DEBUG=1`.
    live: HashSet<u64>,
    next_token: u64,
}

thread_local! {
    static ARENA: RefCell<Pool> = RefCell::new(Pool::default());
}

/// Whether the `GNCG_ARENA_DEBUG` tripwires are armed (cached once per
/// process, like every other config read).
pub fn debug_checks() -> bool {
    static CACHED: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *CACHED.get_or_init(gncg_config::env::arena_debug)
}

/// An owned, recycled scratch buffer. Dereferences to `T`; on drop the
/// value is [`Scratch::reset`] and returned to the renting thread's
/// pool — including during unwinding, which is what makes arena users
/// panic-safe by construction.
pub struct Lease<T: Scratch> {
    value: Option<T>,
    token: u64,
    /// `!Send`: the lease must return to the pool it came from.
    _not_send: PhantomData<*const ()>,
}

// SAFETY: a shared `&Lease<T>` only ever hands out `&T` (no interior
// mutability in the lease itself), so sharing across threads is exactly
// as safe as sharing `&T` — hence the `T: Sync` bound. The lease stays
// `!Send`: the owning thread alone can drop it, which is what routes the
// buffer back to the pool it was rented from. This is what lets scoped
// workers read one thread's rented buffer (e.g. the exact-enumeration
// fan-out over a rented rest matrix) without giving up thread affinity.
unsafe impl<T: Scratch + Sync> Sync for Lease<T> {}

impl<T: Scratch> Deref for Lease<T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        self.value.as_ref().expect("lease value present")
    }
}

impl<T: Scratch> DerefMut for Lease<T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        self.value.as_mut().expect("lease value present")
    }
}

impl<T: Scratch> Drop for Lease<T> {
    fn drop(&mut self) {
        let Some(mut value) = self.value.take() else {
            return;
        };
        value.reset();
        let token = self.token;
        // try_with: during thread teardown the pool may already be
        // gone — then the buffer simply drops, which is always sound.
        let _ = ARENA.try_with(|cell| {
            let mut pool = cell.borrow_mut();
            if debug_checks() {
                assert!(
                    pool.live.remove(&token),
                    "arena lease token {token} returned twice or to a foreign thread"
                );
            }
            pool.stats.returns += 1;
            pool.stats.outstanding = pool.stats.outstanding.saturating_sub(1);
            pool.free
                .entry(TypeId::of::<T>())
                .or_default()
                .push(Box::new(value));
        });
    }
}

/// Rent a scratch value of type `T` from the calling thread's arena:
/// a recycled (reset) instance when one is pooled, else `T::default()`.
pub fn rent<T: Scratch + Default>() -> Lease<T> {
    ARENA.with(|cell| {
        let mut pool = cell.borrow_mut();
        pool.stats.rents += 1;
        pool.stats.outstanding += 1;
        pool.stats.high_water = pool.stats.high_water.max(pool.stats.outstanding);
        let token = if debug_checks() {
            pool.next_token += 1;
            let t = pool.next_token;
            pool.live.insert(t);
            t
        } else {
            0
        };
        let recycled = pool
            .free
            .get_mut(&TypeId::of::<T>())
            .and_then(|v| v.pop())
            .map(|b| *b.downcast::<T>().expect("pool entries are type-keyed"));
        let value = match recycled {
            Some(v) => v,
            None => {
                pool.stats.fresh_allocs += 1;
                T::default()
            }
        };
        Lease {
            value: Some(value),
            token,
            _not_send: PhantomData,
        }
    })
}

/// Rent a `Vec<T>` and size it to `len` copies of `fill` — the
/// allocation-free replacement for `vec![fill; len]`. The `clear` +
/// `resize` sequence writes every element, so contents are independent
/// of the buffer's history.
pub fn rent_vec<T: Clone + 'static>(len: usize, fill: T) -> Lease<Vec<T>> {
    let mut lease = rent::<Vec<T>>();
    lease.clear();
    lease.resize(len, fill);
    lease
}

/// Counters of the calling thread's arena.
pub fn thread_stats() -> ArenaStats {
    ARENA.with(|cell| cell.borrow().stats)
}

/// Reset the calling thread's arena counters (pooled buffers are kept).
pub fn reset_thread_stats() {
    ARENA.with(|cell| cell.borrow_mut().stats = ArenaStats::default());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rent_reuses_capacity_and_clears_contents() {
        let cap = {
            let mut v = rent::<Vec<f64>>();
            v.extend([1.0, 2.0, 3.0]);
            v.reserve(100);
            v.capacity()
        };
        let v = rent::<Vec<f64>>();
        assert!(v.is_empty(), "recycled buffer must come back cleared");
        assert!(v.capacity() >= cap.min(100));
    }

    #[test]
    fn rent_vec_matches_vec_macro() {
        let a = rent_vec(7, f64::INFINITY);
        let b = vec![f64::INFINITY; 7];
        assert_eq!(&*a, &b);
    }

    #[test]
    fn distinct_types_do_not_mix() {
        drop(rent::<Vec<u32>>());
        let f = rent::<Vec<f64>>();
        let u = rent::<Vec<u32>>();
        assert!(f.is_empty() && u.is_empty());
    }
}
