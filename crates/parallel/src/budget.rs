//! Cooperative cancellation and time budgets for the parallel substrate.
//!
//! Long certification sweeps chain NP-hard exact solvers with hours of
//! parallel Dijkstra work; an over-budget exact solve must *cancel
//! cleanly* instead of either aborting the sweep or running forever.
//! The substrate's contract:
//!
//! * A [`CancelToken`] is a shared latch (`AtomicBool` plus an optional
//!   wall-clock deadline). Once observed cancelled it stays cancelled.
//! * A [`Budget`] bundles a deadline with a token. [`with_budget`]
//!   installs it as the *ambient* budget of the calling thread; every
//!   `parallel_map`/`parallel_for`/`parallel_reduce` variant polls the
//!   ambient budget once per chunk (and re-installs it inside its worker
//!   threads, so nested parallel loops — e.g. the exact best-response
//!   enumeration running inside a per-agent map — inherit it).
//! * A cancelled loop stops claiming chunks and returns early with
//!   whatever it has: `parallel_map` leaves unprocessed entries at
//!   `T::default()`, reductions return the partial fold. The caller is
//!   responsible for checking [`Budget::exhausted`] afterwards and
//!   discarding partial output — the budgeted solvers in `gncg-game` do
//!   exactly that and fall back to certified bounds.
//!
//! `GNCG_BUDGET_MS` (read once, like `GNCG_THREADS`) gives every
//! [`Budget::from_env`] call a fresh deadline that many milliseconds in
//! the future; unset or unparsable means unlimited.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A shared cancellation latch: an atomic flag plus an optional deadline.
///
/// Cloning shares the underlying state; cancelling any clone cancels all
/// of them. Deadline expiry latches the flag on first observation, so
/// after a deadline has been seen once, checks are a single atomic load.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    inner: Arc<TokenInner>,
}

#[derive(Debug, Default)]
struct TokenInner {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
}

impl CancelToken {
    /// A token that only cancels when [`CancelToken::cancel`] is called.
    pub fn new() -> Self {
        Self::default()
    }

    /// A token that additionally auto-cancels at `deadline`.
    pub fn with_deadline(deadline: Instant) -> Self {
        Self {
            inner: Arc::new(TokenInner {
                cancelled: AtomicBool::new(false),
                deadline: Some(deadline),
            }),
        }
    }

    /// Request cancellation. Idempotent; visible to all clones.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::SeqCst);
    }

    /// Has cancellation been requested or the deadline passed?
    pub fn is_cancelled(&self) -> bool {
        if self.inner.cancelled.load(Ordering::Relaxed) {
            return true;
        }
        if let Some(dl) = self.inner.deadline {
            if Instant::now() >= dl {
                self.inner.cancelled.store(true, Ordering::SeqCst);
                return true;
            }
        }
        false
    }

    /// The deadline, if this token carries one.
    pub fn deadline(&self) -> Option<Instant> {
        self.inner.deadline
    }
}

/// A work budget: an optional wall-clock deadline plus a cancellation
/// token. Passed (by reference) to budgeted solvers; installed as the
/// ambient budget of a region via [`with_budget`].
#[derive(Debug, Clone, Default)]
pub struct Budget {
    /// Wall-clock instant after which the budget counts as exhausted.
    pub deadline: Option<Instant>,
    /// Cooperative cancellation flag shared with every worker polling
    /// this budget.
    pub cancel: CancelToken,
}

impl Budget {
    /// A budget that never expires on its own (cancel explicitly via
    /// [`Budget::cancel`]).
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// A budget expiring `limit` from now.
    pub fn with_limit(limit: Duration) -> Self {
        let deadline = Instant::now() + limit;
        Self {
            deadline: Some(deadline),
            cancel: CancelToken::with_deadline(deadline),
        }
    }

    /// A budget from the `GNCG_BUDGET_MS` environment variable: a fresh
    /// deadline that many milliseconds from now, or unlimited when the
    /// variable is unset/unparsable. The variable is read once per
    /// process (like `GNCG_THREADS`) through [`gncg_config::env`].
    pub fn from_env() -> Self {
        match gncg_config::env::budget_ms() {
            Some(ms) => Self::with_limit(Duration::from_millis(ms)),
            None => Self::unlimited(),
        }
    }

    /// Request cancellation of everything running under this budget.
    pub fn cancel(&self) {
        self.cancel.cancel();
    }

    /// Cancelled, or past the deadline? Latches once true.
    pub fn exhausted(&self) -> bool {
        if self.cancel.is_cancelled() {
            return true;
        }
        match self.deadline {
            Some(dl) if Instant::now() >= dl => {
                self.cancel.cancel();
                true
            }
            _ => false,
        }
    }

    /// Time left before the deadline (`None` when unlimited; zero once
    /// exhausted).
    pub fn remaining(&self) -> Option<Duration> {
        self.deadline
            .map(|dl| dl.saturating_duration_since(Instant::now()))
    }
}

// ---------------------------------------------------------------------------
// Ambient budget: a per-thread stack the parallel loops poll per chunk.
// ---------------------------------------------------------------------------

thread_local! {
    static AMBIENT: RefCell<Vec<Budget>> = const { RefCell::new(Vec::new()) };
}

/// RAII guard popping the ambient budget on drop.
pub(crate) struct AmbientGuard;

impl Drop for AmbientGuard {
    fn drop(&mut self) {
        AMBIENT.with(|s| {
            s.borrow_mut().pop();
        });
    }
}

/// Install `budget` as the calling thread's ambient budget.
pub(crate) fn enter_ambient(budget: Budget) -> AmbientGuard {
    AMBIENT.with(|s| s.borrow_mut().push(budget));
    AmbientGuard
}

/// The innermost ambient budget of the calling thread, if any.
pub fn current_budget() -> Option<Budget> {
    AMBIENT.with(|s| s.borrow().last().cloned())
}

/// Run `f` with `budget` installed as the ambient budget: every parallel
/// loop reached from `f` (including nested ones inside worker threads)
/// polls it once per chunk and stops claiming work once it is exhausted.
///
/// Cancellation is cooperative and *partial results are garbage*: after
/// a cancelled region, the caller must check [`Budget::exhausted`] and
/// discard the region's output (see the budgeted solvers in `gncg-game`
/// for the intended degradation pattern).
pub fn with_budget<R>(budget: &Budget, f: impl FnOnce() -> R) -> R {
    let _guard = enter_ambient(budget.clone());
    f()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_cancel_is_shared_and_latched() {
        let t = CancelToken::new();
        let t2 = t.clone();
        assert!(!t.is_cancelled());
        t2.cancel();
        assert!(t.is_cancelled());
        assert!(t.is_cancelled());
    }

    #[test]
    fn deadline_token_expires() {
        let t = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        assert!(t.is_cancelled());
        let far = CancelToken::with_deadline(Instant::now() + Duration::from_secs(3600));
        assert!(!far.is_cancelled());
    }

    #[test]
    fn unlimited_budget_never_exhausts() {
        let b = Budget::unlimited();
        assert!(!b.exhausted());
        assert!(b.remaining().is_none());
        b.cancel();
        assert!(b.exhausted());
    }

    #[test]
    fn expired_budget_is_exhausted() {
        let b = Budget::with_limit(Duration::from_millis(0));
        std::thread::sleep(Duration::from_millis(2));
        assert!(b.exhausted());
        assert_eq!(b.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn ambient_budget_nests() {
        assert!(current_budget().is_none());
        let outer = Budget::unlimited();
        with_budget(&outer, || {
            assert!(current_budget().is_some());
            let inner = Budget::with_limit(Duration::from_secs(3600));
            with_budget(&inner, || {
                assert!(current_budget().unwrap().deadline.is_some());
            });
            assert!(current_budget().unwrap().deadline.is_none());
        });
        assert!(current_budget().is_none());
    }
}
