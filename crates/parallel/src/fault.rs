//! Env-gated fault injection for soaking the fault-tolerant execution
//! layer itself.
//!
//! With `GNCG_FAULT_INJECT=<p>` set (a probability in `[0, 1]`), every
//! chunk boundary of the parallel loops and every pool job pickup rolls
//! a deterministic-seedless RNG and, with probability `p`, raises an
//! *injected fault*: a real `panic!` carrying the [`InjectedFault`]
//! payload (optionally preceded by a delay when
//! `GNCG_FAULT_INJECT_DELAY_MS` is also set). The chunk runners catch
//! every panic, classify the payload, and
//!
//! * **absorb** injected faults by retrying the (not-yet-started) chunk,
//!   so results are bit-identical to an uninjected run, while
//! * **propagating** genuine panics through the normal
//!   record-first-payload / re-raise-at-join path.
//!
//! Running the whole test suite under `GNCG_FAULT_INJECT=0.02` therefore
//! soaks the catch/classify/recover machinery on every parallel call in
//! the workspace: any accounting bug (a lost `pending` decrement, a
//! missed notify) shows up as a hang or a wrong result, never as noise.
//!
//! Fault points are only placed where a retry cannot double side
//! effects: at the *start* of a parallel chunk (before any item ran) and
//! in the pool worker loop *before* the job closure is invoked. The
//! sequential fallback paths never inject — a mid-item unwind there
//! could be retried by an enclosing chunk runner and re-run items.

use std::any::Any;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Panic payload marking an injected fault. Chunk runners absorb panics
/// carrying this payload; everything else propagates.
#[derive(Debug)]
pub struct InjectedFault;

/// Injection probability as `f64` bits; `0` (i.e. `0.0`) means disabled.
static PROBABILITY: AtomicU64 = AtomicU64::new(0);
/// Optional injected delay in milliseconds (half the injected faults
/// sleep instead of panicking when this is non-zero).
static DELAY_MS: AtomicU64 = AtomicU64::new(0);
/// Cheap process-global RNG state for the injection rolls.
static RNG: AtomicU64 = AtomicU64::new(0x9e3779b97f4a7c15);

fn init_from_env() {
    static INIT: OnceLock<()> = OnceLock::new();
    INIT.get_or_init(|| {
        if let Some(p) = gncg_config::env::fault_inject() {
            set_injection_probability(p);
        }
        if let Some(ms) = gncg_config::env::fault_inject_delay_ms() {
            DELAY_MS.store(ms, Ordering::Relaxed);
        }
    });
}

/// Current injection probability (0 when disabled).
pub fn injection_probability() -> f64 {
    init_from_env();
    f64::from_bits(PROBABILITY.load(Ordering::Relaxed))
}

/// Override the injection probability at runtime (tests use this; the
/// env variable seeds it at startup). Values are clamped to `[0, 1]`.
/// Safe to flip while other threads run loops: injected faults are
/// absorbed, so concurrent callers only pay a retry.
pub fn set_injection_probability(p: f64) {
    let p = p.clamp(0.0, 1.0);
    if p > 0.0 {
        ensure_quiet_hook();
    }
    PROBABILITY.store(p.to_bits(), Ordering::Relaxed);
}

/// Is `payload` (from `catch_unwind`) an injected fault?
pub fn is_injected(payload: &(dyn Any + Send)) -> bool {
    payload.downcast_ref::<InjectedFault>().is_some()
}

thread_local! {
    /// Set while a chunk retry has given up on the injector: guarantees
    /// progress even at `GNCG_FAULT_INJECT=1`.
    static SUPPRESSED: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// RAII guard disabling fault injection on the current thread.
pub(crate) struct SuppressGuard {
    prev: bool,
}

impl Drop for SuppressGuard {
    fn drop(&mut self) {
        SUPPRESSED.with(|s| s.set(self.prev));
    }
}

/// Disable injection on this thread until the guard drops. Chunk
/// runners use this after repeated injected faults on the same chunk,
/// so a retry loop always terminates.
pub(crate) fn suppress() -> SuppressGuard {
    let prev = SUPPRESSED.with(|s| s.replace(true));
    SuppressGuard { prev }
}

/// A fault point: with the configured probability, sleep and/or panic
/// with an [`InjectedFault`] payload. Callers must place this where an
/// unwind-and-retry cannot re-run completed side effects.
pub fn fault_point() {
    let p = injection_probability();
    if p <= 0.0 || SUPPRESSED.with(|s| s.get()) {
        return;
    }
    let roll = next_u64();
    if (roll >> 11) as f64 / (1u64 << 53) as f64 >= p {
        return;
    }
    gncg_trace::incr(gncg_trace::Counter::FaultsInjected);
    let delay = DELAY_MS.load(Ordering::Relaxed);
    if delay > 0 && roll & 1 == 0 {
        std::thread::sleep(std::time::Duration::from_millis(delay));
        return;
    }
    std::panic::panic_any(InjectedFault);
}

/// splitmix64 over a shared atomic state — speed and statistical
/// *roughly-p* behaviour are all that matters here.
fn next_u64() -> u64 {
    let mut x = RNG
        .fetch_add(0x9e3779b97f4a7c15, Ordering::Relaxed)
        .wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// Install (once) a panic hook that stays silent for [`InjectedFault`]
/// payloads — a 2% injection rate across a full test run would
/// otherwise flood stderr with backtraces for panics that are absorbed
/// by design. All other panics go to the previously installed hook.
fn ensure_quiet_hook() {
    static HOOK: OnceLock<()> = OnceLock::new();
    HOOK.get_or_init(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<InjectedFault>().is_none() {
                prev(info);
            }
        }));
    });
}

/// Serializes tests that flip the process-global injection probability.
/// Concurrent loops in *other* tests tolerate injection (absorbed), but
/// assertions about the probability value itself must not interleave.
#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Restores the pre-test probability (which may be non-zero when
    /// the suite itself runs under `GNCG_FAULT_INJECT`).
    struct Restore(f64);
    impl Drop for Restore {
        fn drop(&mut self) {
            set_injection_probability(self.0);
        }
    }

    #[test]
    fn disabled_injector_never_fires() {
        let _guard = test_lock();
        let _restore = Restore(injection_probability());
        set_injection_probability(0.0);
        for _ in 0..10_000 {
            fault_point(); // probability 0: must not panic
        }
    }

    #[test]
    fn full_probability_always_fires_and_classifies() {
        let _guard = test_lock();
        let _restore = Restore(injection_probability());
        set_injection_probability(1.0);
        let r = catch_unwind(AssertUnwindSafe(fault_point));
        let payload = r.expect_err("fault point at p=1 must raise");
        assert!(is_injected(&*payload));
        assert!(!is_injected(
            &Box::new("a real panic message") as &(dyn Any + Send)
        ));
    }

    #[test]
    fn suppression_masks_injection() {
        let _guard = test_lock();
        let _restore = Restore(injection_probability());
        set_injection_probability(1.0);
        {
            let _s = suppress();
            for _ in 0..100 {
                fault_point(); // suppressed: must not raise
            }
        }
        let r = catch_unwind(AssertUnwindSafe(fault_point));
        assert!(r.is_err(), "suppression must end with the guard");
    }

    #[test]
    fn probability_is_clamped() {
        let _guard = test_lock();
        let _restore = Restore(injection_probability());
        set_injection_probability(7.0);
        assert_eq!(injection_probability(), 1.0);
        set_injection_probability(-3.0);
        assert_eq!(injection_probability(), 0.0);
    }
}
