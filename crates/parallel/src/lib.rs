//! Minimal data-parallel substrate for the GNCG workspace.
//!
//! The heavy kernels in this repository — all-pairs shortest paths, exact
//! best-response enumeration, exact social-optimum search, and the
//! benchmark parameter sweeps — are all embarrassingly parallel over an
//! index range. Rather than pulling in a full work-stealing runtime, this
//! crate provides a small, predictable substrate built on
//! `std::thread::scope` and atomics:
//!
//! * [`parallel_map`] / [`parallel_for`]: self-scheduling loops over
//!   `0..n` using an atomic chunk counter (dynamic load balancing without
//!   work stealing).
//! * [`parallel_map_with`] / [`parallel_for_with`] /
//!   [`parallel_reduce_with`]: the same loops, but each worker thread
//!   owns a persistent scratch state across every chunk it claims — the
//!   backbone for reusable Dijkstra workspaces, where per-call
//!   allocation would otherwise dominate.
//! * [`parallel_reduce`]: fold-then-combine reduction — each worker folds
//!   locally, partial results are combined at the end.
//! * [`min_by_cost`]: parallel argmin used by the exact solvers.
//!
//! All entry points take the number of threads from [`num_threads`], which
//! honours the `GNCG_THREADS` environment variable so benchmarks can run
//! single-threaded ablations. Note that scratch states are per *worker
//! thread*, not per item: a run with `GNCG_THREADS=t` builds at most `t`
//! scratch states (plus one on the sequential fallback path), regardless
//! of `n`.
//!
//! # Fault tolerance
//!
//! Long unattended sweeps must degrade, not hang. The substrate's
//! failure contract:
//!
//! * **Panic isolation.** Every chunk body and every [`pool::ThreadPool`]
//!   job runs under `catch_unwind`. The first panic payload is recorded,
//!   the remaining workers stop claiming chunks, and the panic is
//!   re-raised on the *calling* thread at scope exit (resp. at
//!   [`pool::ThreadPool::wait`]). A panicking job can no longer strand
//!   `wait()` or leave a scoped loop half-famished.
//! * **Cancellation budgets.** [`with_budget`] installs a [`Budget`]
//!   (shared [`CancelToken`] + optional deadline) that every loop
//!   variant polls once per chunk — including nested loops spawned from
//!   worker threads, which inherit the ambient budget. A cancelled loop
//!   returns early with partial output; the caller checks
//!   [`Budget::exhausted`] and discards it (see `gncg-game`'s budgeted
//!   solvers for the degradation pattern).
//! * **Fault injection.** `GNCG_FAULT_INJECT=<p>` arms [`fault`], which
//!   probabilistically raises injected panics at chunk boundaries. The
//!   chunk runners absorb those by retrying the untouched chunk, so an
//!   injected run produces bit-identical results — it soaks the
//!   catch/record/re-raise machinery itself.

pub mod arena;
pub mod budget;
pub mod fault;
pub mod pool;

pub use budget::{current_budget, with_budget, Budget, CancelToken};

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Default chunk size for self-scheduling loops. Small enough for load
/// balance on irregular work items (Dijkstra runs vary with graph shape),
/// large enough to amortize the atomic fetch.
pub const DEFAULT_CHUNK: usize = 16;

/// Number of worker threads to use.
///
/// Reads `GNCG_THREADS` if set (a value of `1` disables parallelism, useful
/// for ablation benches), otherwise `std::thread::available_parallelism()`.
/// The value is computed once and cached: `available_parallelism()` can
/// cost near a millisecond inside containers (it walks the cgroup fs),
/// and this function sits on the hot path of every parallel kernel.
/// Consequently, changing `GNCG_THREADS` after the first call has no
/// effect within the same process.
pub fn num_threads() -> usize {
    static CACHED: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *CACHED.get_or_init(|| match gncg_config::env::threads() {
        Some(n) => n.max(1),
        None => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    })
}

// ---------------------------------------------------------------------------
// Ambient per-region thread cap.
// ---------------------------------------------------------------------------

thread_local! {
    /// Per-thread cap on how many workers a parallel region may spawn;
    /// `None` means "use [`num_threads`]". Installed by
    /// [`with_max_threads`] and re-installed inside worker threads so
    /// nested loops inherit it.
    static MAX_THREADS: std::cell::Cell<Option<usize>> = const { std::cell::Cell::new(None) };
}

/// RAII guard restoring the previous ambient thread cap on drop.
pub struct MaxThreadsGuard {
    prev: Option<usize>,
}

impl Drop for MaxThreadsGuard {
    fn drop(&mut self) {
        MAX_THREADS.with(|c| c.set(self.prev));
    }
}

/// Install `limit` (at least 1) as the calling thread's ambient thread
/// cap until the guard drops. Nested caps only tighten: the effective
/// cap is the minimum of the enclosing cap and `limit`.
pub fn enter_max_threads(limit: usize) -> MaxThreadsGuard {
    let limit = limit.max(1);
    let prev = MAX_THREADS.with(|c| {
        let prev = c.get();
        c.set(Some(prev.map_or(limit, |p| p.min(limit))));
        prev
    });
    MaxThreadsGuard { prev }
}

/// The ambient thread cap of the calling thread, if one is installed.
pub fn current_max_threads() -> Option<usize> {
    MAX_THREADS.with(|c| c.get())
}

/// Run `f` with every parallel loop it reaches (including nested loops
/// inside worker threads) capped at `limit` worker threads. The results
/// are bit-identical to an uncapped run — the loops' outputs never
/// depend on the thread count — only the degree of parallelism changes.
/// The job-service `Session` uses this to stop concurrent jobs from
/// multiplying into `jobs × num_threads` threads.
pub fn with_max_threads<R>(limit: usize, f: impl FnOnce() -> R) -> R {
    let _guard = enter_max_threads(limit);
    f()
}

/// The worker count a parallel region opening now should use:
/// [`num_threads`] clamped by the ambient cap.
fn effective_threads() -> usize {
    let t = num_threads();
    match current_max_threads() {
        Some(cap) => t.min(cap),
        None => t,
    }
}

/// First-panic slot shared by the workers of one scoped loop: records
/// the first real panic payload, flips a poison flag that makes the
/// other workers stop claiming chunks, and re-raises the payload on the
/// calling thread once every worker has joined.
pub(crate) struct PanicSlot {
    poisoned: AtomicBool,
    payload: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

impl PanicSlot {
    pub(crate) fn new() -> Self {
        Self {
            poisoned: AtomicBool::new(false),
            payload: Mutex::new(None),
        }
    }

    /// Record a panic payload; only the first is kept.
    pub(crate) fn record(&self, p: Box<dyn std::any::Any + Send>) {
        self.poisoned.store(true, Ordering::SeqCst);
        let mut slot = self.payload.lock().unwrap_or_else(|e| e.into_inner());
        if slot.is_none() {
            *slot = Some(p);
        }
    }

    pub(crate) fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::Relaxed)
    }

    /// Re-raise the recorded panic, if any. Call after all workers have
    /// joined (i.e. outside the thread scope).
    pub(crate) fn propagate(&self) {
        let payload = self
            .payload
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take();
        if let Some(p) = payload {
            resume_unwind(p);
        }
    }
}

/// How many injected-fault retries a chunk tolerates before running its
/// final attempt with injection suppressed (guaranteeing progress even
/// at `GNCG_FAULT_INJECT=1`).
const MAX_INJECT_RETRIES: u32 = 16;

/// The claim-and-run loop of one worker thread: claims chunks off
/// `counter`, wraps each chunk in `catch_unwind`, absorbs injected
/// faults by retrying the untouched chunk, records the first real panic
/// in `slot`, and stops early when the slot is poisoned or the ambient
/// budget is exhausted.
///
/// The fault point fires *before* any item of the chunk runs, so a
/// retry never re-executes side effects.
fn run_worker_chunks<F: FnMut(usize, usize)>(
    counter: &AtomicUsize,
    n: usize,
    slot: &PanicSlot,
    budget: Option<&Budget>,
    mut run_items: F,
) {
    loop {
        if budget.is_some() {
            gncg_trace::incr(gncg_trace::Counter::BudgetPolls);
        }
        if slot.is_poisoned() || budget.is_some_and(|b| b.exhausted()) {
            return;
        }
        let start = counter.fetch_add(DEFAULT_CHUNK, Ordering::Relaxed);
        if start >= n {
            return;
        }
        gncg_trace::incr(gncg_trace::Counter::ChunkClaims);
        let chunk_t0 = gncg_trace::enabled().then(std::time::Instant::now);
        let end = (start + DEFAULT_CHUNK).min(n);
        let mut injected = 0u32;
        loop {
            let suppress = (injected >= MAX_INJECT_RETRIES).then(fault::suppress);
            let result = catch_unwind(AssertUnwindSafe(|| {
                fault::fault_point();
                run_items(start, end);
            }));
            drop(suppress);
            match result {
                Ok(()) => break,
                Err(p) if fault::is_injected(&*p) => {
                    injected += 1;
                    gncg_trace::incr(gncg_trace::Counter::FaultRetries);
                }
                Err(p) => {
                    slot.record(p);
                    return;
                }
            }
        }
        if let Some(t0) = chunk_t0 {
            gncg_trace::record_chunk_ns(u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX));
        }
    }
}

/// Execute `f(i)` for every `i` in `0..n`, writing results into a `Vec`.
///
/// Work is distributed dynamically in chunks of [`DEFAULT_CHUNK`]; each
/// worker grabs the next chunk with a single atomic `fetch_add`, so uneven
/// per-item cost (e.g. Dijkstra from high-degree sources) balances out.
///
/// Falls back to a sequential loop when `n` is small or only one thread is
/// available — keeping results bit-identical between the two paths.
///
/// If `f` panics, the first panic is re-raised here after all workers
/// stopped. Under a cancelled ambient [`Budget`] the loop returns early
/// with unprocessed entries left at `T::default()` — callers running
/// under a budget must check [`Budget::exhausted`] before trusting the
/// output.
pub fn parallel_map<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send + Default + Clone,
    F: Fn(usize) -> T + Sync,
{
    parallel_map_with(n, || (), move |(), i| f(i))
}

/// Like [`parallel_map`], but each worker thread gets a persistent scratch
/// state built by `init`, reused across every chunk that worker claims.
///
/// `init` runs once per worker thread (and once on the sequential
/// fallback path), so expensive scratch — a Dijkstra workspace, a strategy
/// buffer — amortizes over the whole loop instead of being rebuilt per
/// item. The scratch must not influence results (it is scratch, not
/// state): the output must equal `(0..n).map(|i| f(&mut fresh, i))`.
pub fn parallel_map_with<T, S, Init, F>(n: usize, init: Init, f: F) -> Vec<T>
where
    T: Send + Default + Clone,
    Init: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    let threads = effective_threads();
    let budget = current_budget();
    if threads <= 1 || n <= DEFAULT_CHUNK {
        let mut scratch = init();
        let mut out = vec![T::default(); n];
        for (i, slot) in out.iter_mut().enumerate() {
            if i % DEFAULT_CHUNK == 0 {
                if let Some(b) = budget.as_ref() {
                    gncg_trace::incr(gncg_trace::Counter::BudgetPolls);
                    if b.exhausted() {
                        break;
                    }
                }
            }
            *slot = f(&mut scratch, i);
        }
        return out;
    }
    let mut out = vec![T::default(); n];
    {
        let counter = AtomicUsize::new(0);
        let slot = PanicSlot::new();
        let cap = current_max_threads();
        let out_slices = SliceCells::new(&mut out);
        let out_slices = &out_slices;
        let (counter, slot, budget, init, f) = (&counter, &slot, &budget, &init, &f);
        std::thread::scope(|s| {
            for _ in 0..threads.min(n.div_ceil(DEFAULT_CHUNK)) {
                s.spawn(move || {
                    let _cap = cap.map(enter_max_threads);
                    let _ambient = budget.as_ref().map(|b| budget::enter_ambient(b.clone()));
                    let _trace = gncg_trace::worker_guard();
                    let mut scratch = init();
                    run_worker_chunks(counter, n, slot, budget.as_ref(), |start, end| {
                        for i in start..end {
                            // SAFETY: each index is claimed by exactly one
                            // worker via the atomic counter; a retried
                            // chunk re-writes only its own indices.
                            unsafe { out_slices.write(i, f(&mut scratch, i)) };
                        }
                    });
                });
            }
        });
        slot.propagate();
    }
    out
}

/// Execute `f(i)` for side effects, for every `i` in `0..n`.
pub fn parallel_for<F>(n: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    parallel_for_with(n, || (), move |(), i| f(i));
}

/// Like [`parallel_for`], but with a per-worker persistent scratch state
/// (see [`parallel_map_with`]). Panics in `f` propagate after all
/// workers stopped; a cancelled ambient [`Budget`] makes the loop return
/// early with some items never executed.
pub fn parallel_for_with<S, Init, F>(n: usize, init: Init, f: F)
where
    Init: Fn() -> S + Sync,
    F: Fn(&mut S, usize) + Sync,
{
    let threads = effective_threads();
    let budget = current_budget();
    if threads <= 1 || n <= DEFAULT_CHUNK {
        let mut scratch = init();
        for i in 0..n {
            if i % DEFAULT_CHUNK == 0 {
                if let Some(b) = budget.as_ref() {
                    gncg_trace::incr(gncg_trace::Counter::BudgetPolls);
                    if b.exhausted() {
                        return;
                    }
                }
            }
            f(&mut scratch, i);
        }
        return;
    }
    let counter = AtomicUsize::new(0);
    let slot = PanicSlot::new();
    let cap = current_max_threads();
    let (counter, slot, budget, init, f) = (&counter, &slot, &budget, &init, &f);
    std::thread::scope(|s| {
        for _ in 0..threads.min(n.div_ceil(DEFAULT_CHUNK)) {
            s.spawn(move || {
                let _cap = cap.map(enter_max_threads);
                let _ambient = budget.as_ref().map(|b| budget::enter_ambient(b.clone()));
                let _trace = gncg_trace::worker_guard();
                let mut scratch = init();
                run_worker_chunks(counter, n, slot, budget.as_ref(), |start, end| {
                    for i in start..end {
                        f(&mut scratch, i);
                    }
                });
            });
        }
    });
    slot.propagate();
}

/// Parallel fold-then-combine reduction over `0..n`.
///
/// Each worker folds its chunks into a local accumulator created by
/// `identity`; the per-worker accumulators are combined sequentially with
/// `combine` at the end. `combine` must be associative and commutative for
/// the result to be deterministic up to floating-point reassociation.
pub fn parallel_reduce<T, Id, F, C>(n: usize, identity: Id, fold: F, combine: C) -> T
where
    T: Send,
    Id: Fn() -> T + Sync,
    F: Fn(T, usize) -> T + Sync,
    C: Fn(T, T) -> T,
{
    parallel_reduce_with(n, || (), identity, move |(), acc, i| fold(acc, i), combine)
}

/// Like [`parallel_reduce`], but each worker also owns a persistent
/// scratch state (see [`parallel_map_with`]). The exact best-response
/// enumerator uses this to fold over 2^k strategy subsets with a single
/// reusable neighbour buffer per worker.
///
/// Panics in `fold` propagate after all workers stopped. Under a
/// cancelled ambient [`Budget`] the reduction covers only the chunks
/// claimed before cancellation — a *partial* fold the caller must
/// discard after checking [`Budget::exhausted`].
pub fn parallel_reduce_with<T, S, SInit, Id, F, C>(
    n: usize,
    init: SInit,
    identity: Id,
    fold: F,
    combine: C,
) -> T
where
    T: Send,
    SInit: Fn() -> S + Sync,
    Id: Fn() -> T + Sync,
    F: Fn(&mut S, T, usize) -> T + Sync,
    C: Fn(T, T) -> T,
{
    let threads = effective_threads();
    let budget = current_budget();
    if threads <= 1 || n <= DEFAULT_CHUNK {
        let mut scratch = init();
        let mut acc = identity();
        for i in 0..n {
            if i % DEFAULT_CHUNK == 0 {
                if let Some(b) = budget.as_ref() {
                    gncg_trace::incr(gncg_trace::Counter::BudgetPolls);
                    if b.exhausted() {
                        return acc;
                    }
                }
            }
            acc = fold(&mut scratch, acc, i);
        }
        return acc;
    }
    let counter = AtomicUsize::new(0);
    let slot = PanicSlot::new();
    let workers = threads.min(n.div_ceil(DEFAULT_CHUNK));
    let cap = current_max_threads();
    let (counter, slot, budget, init, identity, fold) =
        (&counter, &slot, &budget, &init, &identity, &fold);
    let partials: Vec<T> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(move || {
                    let _cap = cap.map(enter_max_threads);
                    let _ambient = budget.as_ref().map(|b| budget::enter_ambient(b.clone()));
                    let _trace = gncg_trace::worker_guard();
                    let mut scratch = init();
                    // the accumulator lives in an Option so a panic that
                    // unwinds mid-fold (consuming it) leaves a recoverable
                    // state; the lost partial does not matter because the
                    // recorded panic is re-raised before combining
                    let mut acc = Some(identity());
                    run_worker_chunks(counter, n, slot, budget.as_ref(), |start, end| {
                        let mut a = acc.take().expect("accumulator present");
                        for i in start..end {
                            a = fold(&mut scratch, a, i);
                        }
                        acc = Some(a);
                    });
                    acc.unwrap_or_else(identity)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker thread panicked"))
            .collect()
    });
    slot.propagate();
    let mut it = partials.into_iter();
    let first = it.next().expect("at least one worker");
    it.fold(first, combine)
}

/// Parallel argmin: returns `(index, cost)` minimizing `cost(i)` over
/// `0..n`, breaking ties towards the smaller index (deterministic).
///
/// Returns `None` when `n == 0` or every cost is NaN.
pub fn min_by_cost<F>(n: usize, cost: F) -> Option<(usize, f64)>
where
    F: Fn(usize) -> f64 + Sync,
{
    let best = parallel_reduce(
        n,
        || (usize::MAX, f64::INFINITY),
        |acc, i| {
            let c = cost(i);
            if c < acc.1 || (c == acc.1 && i < acc.0) {
                (i, c)
            } else {
                acc
            }
        },
        |a, b| {
            if b.1 < a.1 || (b.1 == a.1 && b.0 < a.0) {
                b
            } else {
                a
            }
        },
    );
    if best.0 == usize::MAX {
        None
    } else {
        Some(best)
    }
}

/// Cell wrapper allowing disjoint-index writes into a slice from multiple
/// threads. Soundness is the caller's obligation: every index must be
/// written by at most one thread.
struct SliceCells<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: std::marker::PhantomData<&'a mut [T]>,
}

unsafe impl<T: Send> Sync for SliceCells<'_, T> {}
unsafe impl<T: Send> Send for SliceCells<'_, T> {}

impl<'a, T> SliceCells<'a, T> {
    fn new(slice: &'a mut [T]) -> Self {
        Self {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
            _marker: std::marker::PhantomData,
        }
    }

    /// # Safety
    /// `i < len` and no other thread writes index `i`.
    unsafe fn write(&self, i: usize, value: T) {
        debug_assert!(i < self.len);
        unsafe { self.ptr.add(i).write(value) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::{Duration, Instant};

    #[test]
    fn map_matches_sequential() {
        let n = 1000;
        let par = parallel_map(n, |i| i * i);
        let seq: Vec<usize> = (0..n).map(|i| i * i).collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn map_empty() {
        let v: Vec<u64> = parallel_map(0, |_| unreachable!());
        assert!(v.is_empty());
    }

    #[test]
    fn map_single() {
        assert_eq!(parallel_map(1, |i| i + 41), vec![41]);
    }

    #[test]
    fn for_counts_every_index() {
        let n = 997; // prime, not a multiple of chunk size
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        parallel_for(n, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        for h in &hits {
            assert_eq!(h.load(Ordering::Relaxed), 1);
        }
    }

    #[test]
    fn reduce_sum() {
        let n = 12345usize;
        let total = parallel_reduce(n, || 0u64, |acc, i| acc + i as u64, |a, b| a + b);
        assert_eq!(total, (n as u64 * (n as u64 - 1)) / 2);
    }

    #[test]
    fn reduce_empty_returns_identity() {
        let total = parallel_reduce(0, || 7u64, |acc, i| acc + i as u64, |a, b| a + b);
        assert_eq!(total, 7);
    }

    #[test]
    fn min_by_cost_finds_argmin() {
        let costs: Vec<f64> = (0..500).map(|i| ((i as f64) - 250.5).abs()).collect();
        let (idx, c) = min_by_cost(costs.len(), |i| costs[i]).unwrap();
        assert_eq!(idx, 250);
        assert!((c - 0.5).abs() < 1e-12);
    }

    #[test]
    fn min_by_cost_tie_breaks_to_smaller_index() {
        let (idx, _) = min_by_cost(100, |_| 1.0).unwrap();
        assert_eq!(idx, 0);
    }

    #[test]
    fn min_by_cost_empty() {
        assert!(min_by_cost(0, |_| 0.0).is_none());
    }

    #[test]
    fn map_with_uneven_work() {
        // Items near the end are much more expensive; dynamic scheduling
        // must still produce the exact sequential result.
        let n = 300;
        let work = |i: usize| {
            let mut acc = 0u64;
            for k in 0..(i * 50) {
                acc = acc.wrapping_add(k as u64).rotate_left(1);
            }
            acc
        };
        let par = parallel_map(n, work);
        let seq: Vec<u64> = (0..n).map(work).collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn map_with_reuses_scratch_per_worker() {
        // Count init() calls: at most one per worker (+1 is impossible
        // here since the counter only increments inside init).
        let inits = AtomicUsize::new(0);
        let n = 1000;
        let out = parallel_map_with(
            n,
            || {
                inits.fetch_add(1, Ordering::Relaxed);
                vec![0u8; 64] // scratch buffer, contents irrelevant
            },
            |scratch, i| {
                scratch[0] = scratch[0].wrapping_add(1);
                i * 3
            },
        );
        assert_eq!(out, (0..n).map(|i| i * 3).collect::<Vec<_>>());
        assert!(inits.load(Ordering::Relaxed) <= num_threads().max(1));
    }

    #[test]
    fn for_with_scratch_accumulates_independently() {
        let n = 500;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        parallel_for_with(
            n,
            || 0usize, // per-worker counter; unused in results
            |local, i| {
                *local += 1;
                hits[i].fetch_add(1, Ordering::Relaxed);
            },
        );
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn reduce_with_matches_reduce() {
        let n = 4321usize;
        let plain = parallel_reduce(n, || 0u64, |acc, i| acc + i as u64, |a, b| a + b);
        let with = parallel_reduce_with(
            n,
            || vec![0u64; 8],
            || 0u64,
            |scratch, acc, i| {
                scratch[i % 8] = i as u64;
                acc + i as u64
            },
            |a, b| a + b,
        );
        assert_eq!(plain, with);
    }

    // --- panic isolation ---------------------------------------------------

    #[test]
    fn map_panic_propagates_without_hanging() {
        let r = std::panic::catch_unwind(|| {
            parallel_map(1000, |i| {
                if i == 777 {
                    panic!("map boom");
                }
                i
            })
        });
        let payload = r.expect_err("panic must propagate");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or("");
        assert_eq!(msg, "map boom");
    }

    #[test]
    fn for_panic_propagates_without_hanging() {
        let r = std::panic::catch_unwind(|| {
            parallel_for(1000, |i| {
                if i == 13 {
                    panic!("for boom");
                }
            })
        });
        assert!(r.is_err());
    }

    #[test]
    fn reduce_panic_propagates_without_hanging() {
        let r = std::panic::catch_unwind(|| {
            parallel_reduce(
                1000,
                || 0u64,
                |acc, i| {
                    if i == 999 {
                        panic!("reduce boom");
                    }
                    acc + i as u64
                },
                |a, b| a + b,
            )
        });
        assert!(r.is_err());
    }

    #[test]
    fn poisoned_loop_stops_other_workers_early() {
        // after the panic, remaining workers must stop claiming chunks:
        // far fewer than n items execute (not a strict bound, but with
        // n = 100_000 sleep-free items the gap is unambiguous)
        let executed = AtomicUsize::new(0);
        let n = 100_000;
        let r = std::panic::catch_unwind(|| {
            parallel_for(n, |i| {
                if i == 0 {
                    panic!("early boom");
                }
                executed.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(Duration::from_micros(5));
            })
        });
        assert!(r.is_err());
        assert!(
            executed.load(Ordering::Relaxed) < n / 2,
            "workers kept claiming chunks after poison: {} of {n}",
            executed.load(Ordering::Relaxed)
        );
    }

    // --- cancellation ------------------------------------------------------

    #[test]
    fn cancelled_budget_stops_map_promptly() {
        let budget = Budget::with_limit(Duration::from_millis(40));
        let t0 = Instant::now();
        let out = with_budget(&budget, || {
            parallel_map(1_000_000, |i| {
                std::thread::sleep(Duration::from_micros(200));
                i as u64
            })
        });
        let elapsed = t0.elapsed();
        assert!(budget.exhausted());
        // promptness: budget + a small number of chunks of slack, far
        // below the ~3.5 minutes the uncancelled loop would need
        assert!(
            elapsed < Duration::from_secs(5),
            "cancelled map took {elapsed:?}"
        );
        // unprocessed entries stay at the default
        assert!(out.contains(&0));
    }

    #[test]
    fn pre_cancelled_budget_skips_all_work() {
        let budget = Budget::unlimited();
        budget.cancel();
        let ran = AtomicUsize::new(0);
        let out = with_budget(&budget, || {
            parallel_map(1000, |i| {
                ran.fetch_add(1, Ordering::Relaxed);
                i + 1
            })
        });
        assert_eq!(out.len(), 1000);
        assert_eq!(ran.load(Ordering::Relaxed), 0);
        assert!(out.iter().all(|&v| v == 0));
    }

    #[test]
    fn cancelled_reduce_returns_partial_fold() {
        let budget = Budget::unlimited();
        budget.cancel();
        let total = with_budget(&budget, || {
            parallel_reduce(10_000, || 0u64, |acc, i| acc + i as u64, |a, b| a + b)
        });
        assert_eq!(total, 0, "pre-cancelled reduce must fold nothing");
    }

    #[test]
    fn ambient_budget_reaches_workers_and_nested_loops() {
        let budget = Budget::unlimited();
        let seen = with_budget(&budget, || {
            parallel_map(200, |_| {
                // visible on worker threads...
                let outer = current_budget().is_some() as usize;
                // ...and inside loops nested in a worker
                let inner: usize = parallel_reduce(40, || 0usize, |acc, _| acc + 1, |a, b| a + b);
                outer + (inner == 40) as usize
            })
        });
        assert!(seen.iter().all(|&s| s == 2));
    }

    // --- fault injection ---------------------------------------------------

    #[test]
    fn injected_faults_are_absorbed_bit_identically() {
        let _guard = fault::test_lock();
        let before = fault::injection_probability();
        fault::set_injection_probability(0.5);
        let par = parallel_map(5000, |i| i as u64 * 7);
        let red = parallel_reduce(3000, || 0u64, |acc, i| acc + i as u64, |a, b| a + b);
        fault::set_injection_probability(before);
        assert_eq!(par, (0..5000).map(|i| i as u64 * 7).collect::<Vec<_>>());
        assert_eq!(red, (0..3000u64).sum::<u64>());
    }

    #[test]
    fn full_injection_still_terminates() {
        let _guard = fault::test_lock();
        let before = fault::injection_probability();
        fault::set_injection_probability(1.0);
        // bounded retry + suppression guarantees progress even at p = 1
        let out = parallel_map(500, |i| i + 1);
        fault::set_injection_probability(before);
        assert_eq!(out, (1..=500).collect::<Vec<_>>());
    }

    // --- ambient thread cap ------------------------------------------------

    #[test]
    fn max_threads_nests_by_tightening() {
        assert_eq!(current_max_threads(), None);
        with_max_threads(4, || {
            assert_eq!(current_max_threads(), Some(4));
            with_max_threads(2, || assert_eq!(current_max_threads(), Some(2)));
            // a looser nested cap must not widen the enclosing one
            with_max_threads(8, || assert_eq!(current_max_threads(), Some(4)));
            assert_eq!(current_max_threads(), Some(4));
        });
        assert_eq!(current_max_threads(), None);
        // zero is clamped to one, never "unlimited"
        with_max_threads(0, || assert_eq!(current_max_threads(), Some(1)));
    }

    #[test]
    fn max_threads_reaches_workers_and_results_are_identical() {
        let uncapped = parallel_map(5000, |i| (i as u64).wrapping_mul(0x9e37));
        let capped = with_max_threads(2, || {
            parallel_map(5000, |i| {
                // the cap must be visible on worker threads so nested
                // loops inherit it
                assert_eq!(current_max_threads(), Some(2));
                (i as u64).wrapping_mul(0x9e37)
            })
        });
        assert_eq!(uncapped, capped);
    }

    #[test]
    fn max_threads_one_forces_sequential_fallback() {
        let out = with_max_threads(1, || {
            parallel_reduce(10_000, || 0u64, |acc, i| acc + i as u64, |a, b| a + b)
        });
        assert_eq!(out, (0..10_000u64).sum::<u64>());
    }
}
