//! Minimal data-parallel substrate for the GNCG workspace.
//!
//! The heavy kernels in this repository — all-pairs shortest paths, exact
//! best-response enumeration, exact social-optimum search, and the
//! benchmark parameter sweeps — are all embarrassingly parallel over an
//! index range. Rather than pulling in a full work-stealing runtime, this
//! crate provides a small, predictable substrate built on
//! `std::thread::scope` and atomics:
//!
//! * [`parallel_map`] / [`parallel_for`]: self-scheduling loops over
//!   `0..n` using an atomic chunk counter (dynamic load balancing without
//!   work stealing).
//! * [`parallel_map_with`] / [`parallel_for_with`] /
//!   [`parallel_reduce_with`]: the same loops, but each worker thread
//!   owns a persistent scratch state across every chunk it claims — the
//!   backbone for reusable Dijkstra workspaces, where per-call
//!   allocation would otherwise dominate.
//! * [`parallel_reduce`]: fold-then-combine reduction — each worker folds
//!   locally, partial results are combined at the end.
//! * [`min_by_cost`]: parallel argmin used by the exact solvers.
//!
//! All entry points take the number of threads from [`num_threads`], which
//! honours the `GNCG_THREADS` environment variable so benchmarks can run
//! single-threaded ablations. Note that scratch states are per *worker
//! thread*, not per item: a run with `GNCG_THREADS=t` builds at most `t`
//! scratch states (plus one on the sequential fallback path), regardless
//! of `n`.

pub mod pool;

use std::sync::atomic::{AtomicUsize, Ordering};

/// Default chunk size for self-scheduling loops. Small enough for load
/// balance on irregular work items (Dijkstra runs vary with graph shape),
/// large enough to amortize the atomic fetch.
pub const DEFAULT_CHUNK: usize = 16;

/// Number of worker threads to use.
///
/// Reads `GNCG_THREADS` if set (a value of `1` disables parallelism, useful
/// for ablation benches), otherwise `std::thread::available_parallelism()`.
/// The value is computed once and cached: `available_parallelism()` can
/// cost near a millisecond inside containers (it walks the cgroup fs),
/// and this function sits on the hot path of every parallel kernel.
/// Consequently, changing `GNCG_THREADS` after the first call has no
/// effect within the same process.
pub fn num_threads() -> usize {
    static CACHED: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *CACHED.get_or_init(|| {
        if let Ok(v) = std::env::var("GNCG_THREADS") {
            if let Ok(n) = v.parse::<usize>() {
                return n.max(1);
            }
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Execute `f(i)` for every `i` in `0..n`, writing results into a `Vec`.
///
/// Work is distributed dynamically in chunks of [`DEFAULT_CHUNK`]; each
/// worker grabs the next chunk with a single atomic `fetch_add`, so uneven
/// per-item cost (e.g. Dijkstra from high-degree sources) balances out.
///
/// Falls back to a sequential loop when `n` is small or only one thread is
/// available — keeping results bit-identical between the two paths.
pub fn parallel_map<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send + Default + Clone,
    F: Fn(usize) -> T + Sync,
{
    parallel_map_with(n, || (), move |(), i| f(i))
}

/// Like [`parallel_map`], but each worker thread gets a persistent scratch
/// state built by `init`, reused across every chunk that worker claims.
///
/// `init` runs once per worker thread (and once on the sequential
/// fallback path), so expensive scratch — a Dijkstra workspace, a strategy
/// buffer — amortizes over the whole loop instead of being rebuilt per
/// item. The scratch must not influence results (it is scratch, not
/// state): the output must equal `(0..n).map(|i| f(&mut fresh, i))`.
pub fn parallel_map_with<T, S, Init, F>(n: usize, init: Init, f: F) -> Vec<T>
where
    T: Send + Default + Clone,
    S: Send,
    Init: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    let threads = num_threads();
    if threads <= 1 || n <= DEFAULT_CHUNK {
        let mut scratch = init();
        return (0..n).map(|i| f(&mut scratch, i)).collect();
    }
    let mut out = vec![T::default(); n];
    {
        let counter = AtomicUsize::new(0);
        let out_slices = SliceCells::new(&mut out);
        let out_slices = &out_slices;
        let (counter, init, f) = (&counter, &init, &f);
        std::thread::scope(|s| {
            for _ in 0..threads.min(n.div_ceil(DEFAULT_CHUNK)) {
                s.spawn(move || {
                    let mut scratch = init();
                    loop {
                        let start = counter.fetch_add(DEFAULT_CHUNK, Ordering::Relaxed);
                        if start >= n {
                            break;
                        }
                        let end = (start + DEFAULT_CHUNK).min(n);
                        for i in start..end {
                            // SAFETY: each index is claimed by exactly one
                            // worker via the atomic counter.
                            unsafe { out_slices.write(i, f(&mut scratch, i)) };
                        }
                    }
                });
            }
        });
    }
    out
}

/// Execute `f(i)` for side effects, for every `i` in `0..n`.
pub fn parallel_for<F>(n: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    parallel_for_with(n, || (), move |(), i| f(i));
}

/// Like [`parallel_for`], but with a per-worker persistent scratch state
/// (see [`parallel_map_with`]).
pub fn parallel_for_with<S, Init, F>(n: usize, init: Init, f: F)
where
    S: Send,
    Init: Fn() -> S + Sync,
    F: Fn(&mut S, usize) + Sync,
{
    let threads = num_threads();
    if threads <= 1 || n <= DEFAULT_CHUNK {
        let mut scratch = init();
        for i in 0..n {
            f(&mut scratch, i);
        }
        return;
    }
    let counter = AtomicUsize::new(0);
    let (counter, init, f) = (&counter, &init, &f);
    std::thread::scope(|s| {
        for _ in 0..threads.min(n.div_ceil(DEFAULT_CHUNK)) {
            s.spawn(move || {
                let mut scratch = init();
                loop {
                    let start = counter.fetch_add(DEFAULT_CHUNK, Ordering::Relaxed);
                    if start >= n {
                        break;
                    }
                    let end = (start + DEFAULT_CHUNK).min(n);
                    for i in start..end {
                        f(&mut scratch, i);
                    }
                }
            });
        }
    });
}

/// Parallel fold-then-combine reduction over `0..n`.
///
/// Each worker folds its chunks into a local accumulator created by
/// `identity`; the per-worker accumulators are combined sequentially with
/// `combine` at the end. `combine` must be associative and commutative for
/// the result to be deterministic up to floating-point reassociation.
pub fn parallel_reduce<T, Id, F, C>(n: usize, identity: Id, fold: F, combine: C) -> T
where
    T: Send,
    Id: Fn() -> T + Sync,
    F: Fn(T, usize) -> T + Sync,
    C: Fn(T, T) -> T,
{
    parallel_reduce_with(n, || (), identity, move |(), acc, i| fold(acc, i), combine)
}

/// Like [`parallel_reduce`], but each worker also owns a persistent
/// scratch state (see [`parallel_map_with`]). The exact best-response
/// enumerator uses this to fold over 2^k strategy subsets with a single
/// reusable neighbour buffer per worker.
pub fn parallel_reduce_with<T, S, SInit, Id, F, C>(
    n: usize,
    init: SInit,
    identity: Id,
    fold: F,
    combine: C,
) -> T
where
    T: Send,
    S: Send,
    SInit: Fn() -> S + Sync,
    Id: Fn() -> T + Sync,
    F: Fn(&mut S, T, usize) -> T + Sync,
    C: Fn(T, T) -> T,
{
    let threads = num_threads();
    if threads <= 1 || n <= DEFAULT_CHUNK {
        let mut scratch = init();
        return (0..n).fold(identity(), |acc, i| fold(&mut scratch, acc, i));
    }
    let counter = AtomicUsize::new(0);
    let workers = threads.min(n.div_ceil(DEFAULT_CHUNK));
    let (counter, init, identity, fold) = (&counter, &init, &identity, &fold);
    let partials: Vec<T> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(move || {
                    let mut scratch = init();
                    let mut acc = identity();
                    loop {
                        let start = counter.fetch_add(DEFAULT_CHUNK, Ordering::Relaxed);
                        if start >= n {
                            break;
                        }
                        let end = (start + DEFAULT_CHUNK).min(n);
                        for i in start..end {
                            acc = fold(&mut scratch, acc, i);
                        }
                    }
                    acc
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker thread panicked"))
            .collect()
    });
    let mut it = partials.into_iter();
    let first = it.next().expect("at least one worker");
    it.fold(first, combine)
}

/// Parallel argmin: returns `(index, cost)` minimizing `cost(i)` over
/// `0..n`, breaking ties towards the smaller index (deterministic).
///
/// Returns `None` when `n == 0` or every cost is NaN.
pub fn min_by_cost<F>(n: usize, cost: F) -> Option<(usize, f64)>
where
    F: Fn(usize) -> f64 + Sync,
{
    let best = parallel_reduce(
        n,
        || (usize::MAX, f64::INFINITY),
        |acc, i| {
            let c = cost(i);
            if c < acc.1 || (c == acc.1 && i < acc.0) {
                (i, c)
            } else {
                acc
            }
        },
        |a, b| {
            if b.1 < a.1 || (b.1 == a.1 && b.0 < a.0) {
                b
            } else {
                a
            }
        },
    );
    if best.0 == usize::MAX {
        None
    } else {
        Some(best)
    }
}

/// Cell wrapper allowing disjoint-index writes into a slice from multiple
/// threads. Soundness is the caller's obligation: every index must be
/// written by at most one thread.
struct SliceCells<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: std::marker::PhantomData<&'a mut [T]>,
}

unsafe impl<T: Send> Sync for SliceCells<'_, T> {}
unsafe impl<T: Send> Send for SliceCells<'_, T> {}

impl<'a, T> SliceCells<'a, T> {
    fn new(slice: &'a mut [T]) -> Self {
        Self {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
            _marker: std::marker::PhantomData,
        }
    }

    /// # Safety
    /// `i < len` and no other thread writes index `i`.
    unsafe fn write(&self, i: usize, value: T) {
        debug_assert!(i < self.len);
        unsafe { self.ptr.add(i).write(value) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_matches_sequential() {
        let n = 1000;
        let par = parallel_map(n, |i| i * i);
        let seq: Vec<usize> = (0..n).map(|i| i * i).collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn map_empty() {
        let v: Vec<u64> = parallel_map(0, |_| unreachable!());
        assert!(v.is_empty());
    }

    #[test]
    fn map_single() {
        assert_eq!(parallel_map(1, |i| i + 41), vec![41]);
    }

    #[test]
    fn for_counts_every_index() {
        let n = 997; // prime, not a multiple of chunk size
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        parallel_for(n, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        for h in &hits {
            assert_eq!(h.load(Ordering::Relaxed), 1);
        }
    }

    #[test]
    fn reduce_sum() {
        let n = 12345usize;
        let total = parallel_reduce(n, || 0u64, |acc, i| acc + i as u64, |a, b| a + b);
        assert_eq!(total, (n as u64 * (n as u64 - 1)) / 2);
    }

    #[test]
    fn reduce_empty_returns_identity() {
        let total = parallel_reduce(0, || 7u64, |acc, i| acc + i as u64, |a, b| a + b);
        assert_eq!(total, 7);
    }

    #[test]
    fn min_by_cost_finds_argmin() {
        let costs: Vec<f64> = (0..500).map(|i| ((i as f64) - 250.5).abs()).collect();
        let (idx, c) = min_by_cost(costs.len(), |i| costs[i]).unwrap();
        assert_eq!(idx, 250);
        assert!((c - 0.5).abs() < 1e-12);
    }

    #[test]
    fn min_by_cost_tie_breaks_to_smaller_index() {
        let (idx, _) = min_by_cost(100, |_| 1.0).unwrap();
        assert_eq!(idx, 0);
    }

    #[test]
    fn min_by_cost_empty() {
        assert!(min_by_cost(0, |_| 0.0).is_none());
    }

    #[test]
    fn map_with_uneven_work() {
        // Items near the end are much more expensive; dynamic scheduling
        // must still produce the exact sequential result.
        let n = 300;
        let work = |i: usize| {
            let mut acc = 0u64;
            for k in 0..(i * 50) {
                acc = acc.wrapping_add(k as u64).rotate_left(1);
            }
            acc
        };
        let par = parallel_map(n, work);
        let seq: Vec<u64> = (0..n).map(work).collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn map_with_reuses_scratch_per_worker() {
        // Count init() calls: at most one per worker (+1 is impossible
        // here since the counter only increments inside init).
        let inits = AtomicUsize::new(0);
        let n = 1000;
        let out = parallel_map_with(
            n,
            || {
                inits.fetch_add(1, Ordering::Relaxed);
                vec![0u8; 64] // scratch buffer, contents irrelevant
            },
            |scratch, i| {
                scratch[0] = scratch[0].wrapping_add(1);
                i * 3
            },
        );
        assert_eq!(out, (0..n).map(|i| i * 3).collect::<Vec<_>>());
        assert!(inits.load(Ordering::Relaxed) <= num_threads().max(1));
    }

    #[test]
    fn for_with_scratch_accumulates_independently() {
        let n = 500;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        parallel_for_with(
            n,
            || 0usize, // per-worker counter; unused in results
            |local, i| {
                *local += 1;
                hits[i].fetch_add(1, Ordering::Relaxed);
            },
        );
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn reduce_with_matches_reduce() {
        let n = 4321usize;
        let plain = parallel_reduce(n, || 0u64, |acc, i| acc + i as u64, |a, b| a + b);
        let with = parallel_reduce_with(
            n,
            || vec![0u64; 8],
            || 0u64,
            |scratch, acc, i| {
                scratch[i % 8] = i as u64;
                acc + i as u64
            },
            |a, b| a + b,
        );
        assert_eq!(plain, with);
    }
}
