//! Fault soak: with injected faults firing at the `GNCG_FAULT_INJECT`
//! soak probability, every service job still completes with the
//! bit-identical result (the chunk runners absorb and retry injected
//! faults deterministically) and the pool stays healthy for jobs
//! submitted afterwards.
//!
//! One test in its own binary: the injection probability is a process
//! global, and no other test should run concurrently with it raised.

use std::sync::Arc;

use gncg_game::certify::certify;
use gncg_game::{OwnedNetwork, SolverConfig};
use gncg_geometry::generators;
use gncg_parallel::fault;
use gncg_service::{JobOptions, Session};

#[test]
fn fault_soak_all_jobs_succeed_and_pool_stays_healthy() {
    // reference results with injection off
    let mut want = Vec::new();
    for seed in 0..8u64 {
        let ps = generators::uniform_unit_square(12, seed);
        let net = OwnedNetwork::center_star(12, 0);
        want.push(certify(&ps, &net, 2.0, &SolverConfig::bounds_only()));
    }

    let before = fault::injection_probability();
    fault::set_injection_probability(0.02);
    let session = Session::builder().threads(4).build();
    let handles: Vec<_> = (0..8u64)
        .map(|seed| {
            let ps = Arc::new(generators::uniform_unit_square(12, seed));
            let net = OwnedNetwork::center_star(12, 0);
            session
                .submit_certify(
                    ps,
                    net,
                    2.0,
                    SolverConfig::bounds_only(),
                    JobOptions::default(),
                )
                .expect("admitted")
        })
        .collect();
    for (h, want) in handles.into_iter().zip(&want) {
        let got = h.wait().expect("job survives injected faults");
        assert_eq!(got.beta_upper.to_bits(), want.beta_upper.to_bits());
        assert_eq!(got.gamma_upper.to_bits(), want.gamma_upper.to_bits());
        assert_eq!(got.social_cost.to_bits(), want.social_cost.to_bits());
    }
    fault::set_injection_probability(before);

    // pool is still healthy: a fresh job on the same session completes
    let ps = Arc::new(generators::uniform_unit_square(12, 99));
    let net = OwnedNetwork::center_star(12, 0);
    let h = session
        .submit_certify(
            ps,
            net,
            2.0,
            SolverConfig::bounds_only(),
            JobOptions::default(),
        )
        .expect("admitted after soak");
    assert!(h.wait().is_ok());
    session.wait_idle();
}
