//! Service admission counters are deterministic: they count admissions
//! and dispatches, not interleavings. One test in its own process so no
//! concurrent test can touch the process-wide totals.

use std::sync::Arc;

use gncg_game::{OwnedNetwork, SolverConfig};
use gncg_geometry::generators;
use gncg_service::{JobOptions, Session};

#[test]
fn service_counters_count_admissions() {
    gncg_trace::set_enabled(true);
    let before = gncg_trace::snapshot();
    let session = Session::builder().threads(2).build();
    let mut handles = Vec::new();
    for seed in 0..4u64 {
        let ps = generators::uniform_unit_square(5, seed);
        let net = OwnedNetwork::center_star(5, 0);
        handles.push(
            session
                .submit_certify(
                    Arc::new(ps),
                    net,
                    1.0,
                    SolverConfig::bounds_only(),
                    JobOptions::default(),
                )
                .expect("admitted"),
        );
    }
    for h in handles {
        h.wait().expect("job succeeded");
    }
    session.wait_idle();
    let after = gncg_trace::snapshot();
    let delta = after.counters_since(&before);
    assert_eq!(delta[gncg_trace::Counter::ServiceEnqueued as usize], 4);
    assert_eq!(delta[gncg_trace::Counter::ServiceDequeued as usize], 4);
    assert_eq!(delta[gncg_trace::Counter::ServiceRejected as usize], 0);
    gncg_trace::set_enabled(false);
}
