//! End-to-end contract of the job service:
//!
//! * a concurrent mixed workload produces bit-identical results to the
//!   same calls made sequentially on the calling thread — the session
//!   adds scheduling, never arithmetic;
//! * a deliberately panicking job fails alone: its handle resolves to
//!   [`JobError::Panicked`] while jobs submitted before and after it
//!   complete normally on the same pool.

use std::sync::Arc;

use gncg_game::certify::certify;
use gncg_game::{best_response, dynamics, exact, OwnedNetwork, SolverConfig};
use gncg_geometry::generators;
use gncg_service::{JobError, JobOptions, Session};

const SEEDS: [u64; 3] = [11, 22, 33];

#[test]
fn concurrent_mixed_load_bit_identical_to_sequential() {
    // sequential reference: every job kind, run directly
    let mut seq_certify = Vec::new();
    let mut seq_br = Vec::new();
    let mut seq_opt = Vec::new();
    let mut seq_dyn = Vec::new();
    for &seed in &SEEDS {
        let ps = generators::uniform_unit_square(6, seed);
        let net = OwnedNetwork::center_star(6, 0);
        seq_certify.push(certify(&ps, &net, 1.5, &SolverConfig::exact()));
        seq_br.push(
            best_response::exact_best_response(&ps, &net, 1.5, 1, &SolverConfig::default())
                .expect_exact("best response"),
        );
        seq_opt.push(
            exact::exact_social_optimum(&ps, 1.5, &SolverConfig::default())
                .expect_exact("social optimum"),
        );
        seq_dyn.push(dynamics::run(
            &ps,
            &net,
            1.5,
            dynamics::ResponseRule::BestSingleMove,
            200,
        ));
    }

    // concurrent: all twelve jobs in flight on one session
    let session = Session::builder().threads(4).build();
    let mut h_certify = Vec::new();
    let mut h_br = Vec::new();
    let mut h_opt = Vec::new();
    let mut h_dyn = Vec::new();
    for &seed in &SEEDS {
        let ps = Arc::new(generators::uniform_unit_square(6, seed));
        let net = OwnedNetwork::center_star(6, 0);
        h_certify.push(
            session
                .submit_certify(
                    ps.clone(),
                    net.clone(),
                    1.5,
                    SolverConfig::exact(),
                    JobOptions::default(),
                )
                .expect("admitted"),
        );
        h_br.push(
            session
                .submit_best_response(
                    ps.clone(),
                    net.clone(),
                    1.5,
                    1,
                    SolverConfig::default(),
                    JobOptions::default(),
                )
                .expect("admitted"),
        );
        h_opt.push(
            session
                .submit_exact_optimum(
                    ps.clone(),
                    1.5,
                    SolverConfig::default(),
                    JobOptions::default(),
                )
                .expect("admitted"),
        );
        h_dyn.push(
            session
                .submit_dynamics(
                    ps,
                    net,
                    1.5,
                    dynamics::ResponseRule::BestSingleMove,
                    200,
                    SolverConfig::default(),
                    JobOptions::default(),
                )
                .expect("admitted"),
        );
    }

    for (h, want) in h_certify.into_iter().zip(&seq_certify) {
        let got = h.wait().expect("certify job");
        assert_eq!(got.social_cost.to_bits(), want.social_cost.to_bits());
        assert_eq!(got.beta_upper.to_bits(), want.beta_upper.to_bits());
        assert_eq!(
            got.beta_exact.map(f64::to_bits),
            want.beta_exact.map(f64::to_bits)
        );
        assert_eq!(
            got.gamma_exact.map(f64::to_bits),
            want.gamma_exact.map(f64::to_bits)
        );
    }
    for (h, want) in h_br.into_iter().zip(&seq_br) {
        let got = h.wait().expect("best-response job").expect_exact("exact");
        assert_eq!(got.cost.to_bits(), want.cost.to_bits());
        assert_eq!(got.strategy, want.strategy);
    }
    for (h, want) in h_opt.into_iter().zip(&seq_opt) {
        let got = h.wait().expect("optimum job").expect_exact("exact");
        assert_eq!(got.social_cost.to_bits(), want.social_cost.to_bits());
    }
    for (h, want) in h_dyn.into_iter().zip(&seq_dyn) {
        match (h.wait().expect("dynamics job"), want) {
            (
                dynamics::Outcome::Converged { state, steps },
                dynamics::Outcome::Converged {
                    state: ws,
                    steps: wn,
                },
            ) => {
                assert_eq!(&state, ws);
                assert_eq!(&steps, wn);
            }
            (got, want) => panic!("outcome shape diverged: {got:?} vs {want:?}"),
        }
    }
    session.wait_idle();
}

#[test]
fn panicking_job_fails_alone_and_pool_stays_healthy() {
    let session = Session::builder().threads(2).build();
    let ps = Arc::new(generators::uniform_unit_square(6, 5));
    let net = OwnedNetwork::center_star(6, 0);

    let before = session
        .submit_certify(
            ps.clone(),
            net.clone(),
            1.0,
            SolverConfig::bounds_only(),
            JobOptions::default(),
        )
        .expect("admitted");
    let bomb = session
        .submit_sweep(JobOptions::default(), |_ctx| {
            panic!("deliberate integration-test panic")
        })
        .expect("admitted");
    let after = session
        .submit_certify(
            ps,
            net,
            1.0,
            SolverConfig::bounds_only(),
            JobOptions::default(),
        )
        .expect("admitted");

    assert!(before.wait().is_ok(), "job before the panic must succeed");
    match bomb.wait() {
        Err(JobError::Panicked(msg)) => {
            assert!(msg.contains("deliberate integration-test panic"))
        }
        other => panic!("expected Panicked, got {other:?}"),
    }
    assert!(after.wait().is_ok(), "job after the panic must succeed");
    session.wait_idle();
}

#[test]
fn model_choice_threads_through_typed_submits() {
    use gncg_game::ModelKind;
    let session = Session::builder().threads(2).build();
    let ps = Arc::new(generators::uniform_unit_square(6, 9));
    let net = OwnedNetwork::center_star(6, 0);
    let max_cfg = SolverConfig::default().with_model(ModelKind::MaxDistance);
    let max_exact = SolverConfig::exact().with_model(ModelKind::MaxDistance);

    let h_cert = session
        .submit_certify(
            ps.clone(),
            net.clone(),
            1.5,
            max_exact.clone(),
            JobOptions::default(),
        )
        .expect("admitted");
    let h_br = session
        .submit_best_response(
            ps.clone(),
            net.clone(),
            1.5,
            1,
            max_cfg.clone(),
            JobOptions::default(),
        )
        .expect("admitted");
    let h_dyn = session
        .submit_dynamics(
            ps.clone(),
            net.clone(),
            1.5,
            dynamics::ResponseRule::BestSingleMove,
            200,
            max_cfg.clone(),
            JobOptions::default(),
        )
        .expect("admitted");

    let want_cert = certify(&*ps, &net, 1.5, &max_exact);
    let got_cert = h_cert.wait().expect("certify job");
    assert_eq!(got_cert.model, ModelKind::MaxDistance);
    assert_eq!(
        got_cert.social_cost.to_bits(),
        want_cert.social_cost.to_bits()
    );
    assert_eq!(
        got_cert.beta_upper.to_bits(),
        want_cert.beta_upper.to_bits()
    );

    let want_br =
        best_response::exact_best_response(&*ps, &net, 1.5, 1, &max_cfg).expect_exact("br");
    let got_br = h_br.wait().expect("br job").expect_exact("br");
    assert_eq!(got_br.cost.to_bits(), want_br.cost.to_bits());
    assert_eq!(got_br.strategy, want_br.strategy);

    let want_dyn = dynamics::run_spec(
        &*ps,
        &net,
        1.5,
        dynamics::ResponseRule::BestSingleMove,
        dynamics::AgentOrder::RoundRobin,
        200,
        &max_cfg,
    );
    assert_eq!(h_dyn.wait().expect("dynamics job"), want_dyn);
    session.wait_idle();
}
