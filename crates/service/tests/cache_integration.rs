//! Cache-aware certification is a pure transparency layer: warm-cache
//! results are bit-identical to cold-cache results and to direct solver
//! calls, across worker-thread counts and both cost models — and a
//! budgeted job never touches the cache at all.
//!
//! The canonical surface is `Session::attach_result_cache` plus a
//! [`SolverConfig`] carrying a cache key; the deprecated
//! `submit_certify_cached` shim is exercised once for compatibility.

use std::fs;
use std::path::PathBuf;
use std::sync::Arc;

use gncg_config::ModelKind;
use gncg_game::certify::certify;
use gncg_game::{OwnedNetwork, SolverConfig};
use gncg_geometry::generators;
use gncg_json::{canon, object, ToJson, Value};
use gncg_parallel::Budget;
use gncg_service::cache::ResultCache;
use gncg_service::{JobOptions, Session};

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("gncg_cache_int_{tag}_{}", std::process::id()));
    let _ = fs::remove_dir_all(&d);
    d
}

/// The certify content key the sweep engine would build for this unit
/// (instance + full options), assembled by hand here so the service
/// test does not depend on gncg-sweep (which is downstream of us).
fn key_for(n: usize, seed: u64, alpha: f64, model: ModelKind) -> String {
    let desc = object(vec![
        ("generator", Value::String("uniform".into())),
        ("n", Value::Number(n as f64)),
        ("seed", Value::Number(seed as f64)),
    ]);
    let options = object(vec![
        ("alpha", Value::Number(alpha)),
        ("exact", Value::Bool(true)),
        ("model", Value::String(model.as_str().into())),
    ]);
    let spec = object(vec![
        ("instance", desc),
        ("op", Value::String("certify".into())),
        ("options", options),
    ]);
    canon::content_key(&spec)
}

#[test]
fn warm_equals_cold_equals_direct_across_threads_and_models() {
    let (n, seed, alpha) = (6usize, 42u64, 1.5f64);
    for model in [ModelKind::SumDistances, ModelKind::MaxDistance] {
        let key = key_for(n, seed, alpha, model);
        let cfg = SolverConfig::exact().with_model(model);

        let ps = generators::uniform_unit_square(n, seed);
        let net = OwnedNetwork::center_star(n, 0);
        let direct = certify(&ps, &net, alpha, &cfg);
        let direct_json = gncg_json::to_string(&direct.to_json());

        let dir = tmpdir(&format!("wcd_{model}"));
        for threads in [1usize, 4] {
            // Cold on the first thread count, warm on every later pass
            // over the same directory — all must match `direct`.
            let cache = Arc::new(ResultCache::at(&dir).unwrap());
            let session = Session::builder().threads(threads).build();
            session.attach_result_cache(Arc::clone(&cache));
            let ps = Arc::new(generators::uniform_unit_square(n, seed));
            let net = OwnedNetwork::center_star(n, 0);
            let report = session
                .submit_certify(
                    ps,
                    net,
                    alpha,
                    cfg.clone().with_cache_key(&key),
                    JobOptions::default(),
                )
                .expect("admitted")
                .wait()
                .expect("certify succeeded");
            assert_eq!(
                gncg_json::to_string(&report.to_json()),
                direct_json,
                "threads={threads} model={model}: cached path diverged from direct"
            );
            // The entry is installed after the cold pass, so the second
            // thread count exercises the warm path.
            assert!(cache.get(&key).is_some());
        }
    }
}

#[test]
fn warm_hit_resolves_without_queueing() {
    let (n, seed, alpha) = (5usize, 7u64, 2.0f64);
    let model = ModelKind::SumDistances;
    let key = key_for(n, seed, alpha, model);
    let dir = tmpdir("resolved");
    let cache = Arc::new(ResultCache::at(&dir).unwrap());
    let session = Session::builder().threads(1).build();
    session.attach_result_cache(Arc::clone(&cache));
    let submit = |job: JobOptions| {
        session
            .submit_certify(
                Arc::new(generators::uniform_unit_square(n, seed)),
                OwnedNetwork::center_star(n, 0),
                alpha,
                SolverConfig::exact().with_model(model).with_cache_key(&key),
                job,
            )
            .expect("admitted")
    };
    let cold = submit(JobOptions::default()).wait().expect("cold certify");

    // A warm submit's handle is born resolved: done before any wait.
    let warm_handle = submit(JobOptions::default());
    assert!(warm_handle.is_done(), "warm hit must not enter the queue");
    let warm = warm_handle.wait().expect("warm certify");
    assert_eq!(
        gncg_json::to_string(&warm.to_json()),
        gncg_json::to_string(&cold.to_json())
    );
}

#[test]
fn keyed_submit_without_attached_cache_runs_uncached() {
    let (n, seed, alpha) = (5usize, 11u64, 1.5f64);
    let key = key_for(n, seed, alpha, ModelKind::SumDistances);
    // No attach_result_cache: the keyed policy silently degrades to an
    // uncached run, bit-identical to the direct call.
    let session = Session::builder().threads(1).build();
    let report = session
        .submit_certify(
            Arc::new(generators::uniform_unit_square(n, seed)),
            OwnedNetwork::center_star(n, 0),
            alpha,
            SolverConfig::exact().with_cache_key(&key),
            JobOptions::default(),
        )
        .expect("admitted")
        .wait()
        .expect("certify succeeded");
    let ps = generators::uniform_unit_square(n, seed);
    let net = OwnedNetwork::center_star(n, 0);
    let direct = certify(&ps, &net, alpha, &SolverConfig::exact());
    assert_eq!(
        gncg_json::to_string(&report.to_json()),
        gncg_json::to_string(&direct.to_json())
    );
}

#[test]
fn budgeted_jobs_bypass_the_cache_entirely() {
    let (n, seed, alpha) = (5usize, 3u64, 1.5f64);
    let key = key_for(n, seed, alpha, ModelKind::SumDistances);
    let dir = tmpdir("budget");
    let cache = Arc::new(ResultCache::at(&dir).unwrap());
    let session = Session::builder().threads(1).build();
    session.attach_result_cache(Arc::clone(&cache));

    // A generous budget (nothing degrades at this size) — but *any*
    // limited budget makes the result ineligible for the cache.
    let job = JobOptions::with_budget(&Budget::with_limit(std::time::Duration::from_secs(60)));
    session
        .submit_certify(
            Arc::new(generators::uniform_unit_square(n, seed)),
            OwnedNetwork::center_star(n, 0),
            alpha,
            SolverConfig::exact().with_cache_key(&key),
            job,
        )
        .expect("admitted")
        .wait()
        .expect("certify succeeded");
    assert!(
        cache.get(&key).is_none(),
        "budgeted result must not be cached (no put)"
    );
    assert_eq!(cache.entry_count().unwrap(), 0);
}

/// The deprecated explicit-cache shim must stay bit-identical to the
/// canonical attached-cache path for one release.
#[test]
#[allow(deprecated)]
fn deprecated_submit_certify_cached_matches_canonical_path() {
    use gncg_game::certify::CertifyOptions;
    let (n, seed, alpha) = (5usize, 13u64, 1.5f64);
    let key = key_for(n, seed, alpha, ModelKind::SumDistances);
    let dir = tmpdir("shim");
    let cache = Arc::new(ResultCache::at(&dir).unwrap());
    let session = Session::builder().threads(1).build();
    let legacy = session
        .submit_certify_cached(
            Some(Arc::clone(&cache)),
            &key,
            Arc::new(generators::uniform_unit_square(n, seed)),
            OwnedNetwork::center_star(n, 0),
            alpha,
            CertifyOptions::exact(),
            JobOptions::default(),
        )
        .expect("admitted")
        .wait()
        .expect("legacy certify");
    assert!(cache.get(&key).is_some(), "shim still populates the cache");
    // the canonical path served from the same cache agrees bit-for-bit
    session.attach_result_cache(Arc::clone(&cache));
    let canonical = session
        .submit_certify(
            Arc::new(generators::uniform_unit_square(n, seed)),
            OwnedNetwork::center_star(n, 0),
            alpha,
            SolverConfig::exact().with_cache_key(&key),
            JobOptions::default(),
        )
        .expect("admitted")
        .wait()
        .expect("canonical certify");
    assert_eq!(
        gncg_json::to_string(&legacy.to_json()),
        gncg_json::to_string(&canonical.to_json())
    );
}
