//! Cache-aware certification is a pure transparency layer: warm-cache
//! results are bit-identical to cold-cache results and to direct solver
//! calls, across worker-thread counts and both cost models — and a
//! budgeted job never touches the cache at all.

use std::fs;
use std::path::PathBuf;
use std::sync::Arc;

use gncg_config::ModelKind;
use gncg_game::certify::{certify, CertifyOptions};
use gncg_game::OwnedNetwork;
use gncg_geometry::generators;
use gncg_json::{canon, object, ToJson, Value};
use gncg_parallel::Budget;
use gncg_service::cache::ResultCache;
use gncg_service::{JobOptions, Session};

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("gncg_cache_int_{tag}_{}", std::process::id()));
    let _ = fs::remove_dir_all(&d);
    d
}

/// The certify content key the sweep engine would build for this unit
/// (instance + full options), assembled by hand here so the service
/// test does not depend on gncg-sweep (which is downstream of us).
fn key_for(n: usize, seed: u64, alpha: f64, model: ModelKind) -> String {
    let desc = object(vec![
        ("generator", Value::String("uniform".into())),
        ("n", Value::Number(n as f64)),
        ("seed", Value::Number(seed as f64)),
    ]);
    let options = object(vec![
        ("alpha", Value::Number(alpha)),
        ("exact", Value::Bool(true)),
        ("model", Value::String(model.as_str().into())),
    ]);
    let spec = object(vec![
        ("instance", desc),
        ("op", Value::String("certify".into())),
        ("options", options),
    ]);
    canon::content_key(&spec)
}

#[test]
fn warm_equals_cold_equals_direct_across_threads_and_models() {
    let (n, seed, alpha) = (6usize, 42u64, 1.5f64);
    for model in [ModelKind::SumDistances, ModelKind::MaxDistance] {
        let key = key_for(n, seed, alpha, model);
        let opts = CertifyOptions::exact().with_model(model);

        let ps = generators::uniform_unit_square(n, seed);
        let net = OwnedNetwork::center_star(n, 0);
        let direct = certify(&ps, &net, alpha, opts.clone());
        let direct_json = gncg_json::to_string(&direct.to_json());

        let dir = tmpdir(&format!("wcd_{model}"));
        for threads in [1usize, 4] {
            // Cold on the first thread count, warm on every later pass
            // over the same directory — all must match `direct`.
            let cache = Arc::new(ResultCache::at(&dir).unwrap());
            let session = Session::builder().threads(threads).build();
            let ps = Arc::new(generators::uniform_unit_square(n, seed));
            let net = OwnedNetwork::center_star(n, 0);
            let report = session
                .submit_certify_cached(
                    Some(Arc::clone(&cache)),
                    &key,
                    ps,
                    net,
                    alpha,
                    opts.clone(),
                    JobOptions::default(),
                )
                .expect("admitted")
                .wait()
                .expect("certify succeeded");
            assert_eq!(
                gncg_json::to_string(&report.to_json()),
                direct_json,
                "threads={threads} model={model}: cached path diverged from direct"
            );
            // The entry is installed after the cold pass, so the second
            // thread count exercises the warm path.
            assert!(cache.get(&key).is_some());
        }
    }
}

#[test]
fn warm_hit_resolves_without_queueing() {
    let (n, seed, alpha) = (5usize, 7u64, 2.0f64);
    let model = ModelKind::SumDistances;
    let key = key_for(n, seed, alpha, model);
    let dir = tmpdir("resolved");
    let cache = Arc::new(ResultCache::at(&dir).unwrap());
    let session = Session::builder().threads(1).build();
    let submit = |cache: Option<Arc<ResultCache>>, job: JobOptions| {
        session
            .submit_certify_cached(
                cache,
                &key,
                Arc::new(generators::uniform_unit_square(n, seed)),
                OwnedNetwork::center_star(n, 0),
                alpha,
                CertifyOptions::exact().with_model(model),
                job,
            )
            .expect("admitted")
    };
    let cold = submit(Some(Arc::clone(&cache)), JobOptions::default())
        .wait()
        .expect("cold certify");

    // A warm submit's handle is born resolved: done before any wait.
    let warm_handle = submit(Some(Arc::clone(&cache)), JobOptions::default());
    assert!(warm_handle.is_done(), "warm hit must not enter the queue");
    let warm = warm_handle.wait().expect("warm certify");
    assert_eq!(
        gncg_json::to_string(&warm.to_json()),
        gncg_json::to_string(&cold.to_json())
    );
}

#[test]
fn budgeted_jobs_bypass_the_cache_entirely() {
    let (n, seed, alpha) = (5usize, 3u64, 1.5f64);
    let key = key_for(n, seed, alpha, ModelKind::SumDistances);
    let dir = tmpdir("budget");
    let cache = Arc::new(ResultCache::at(&dir).unwrap());
    let session = Session::builder().threads(1).build();

    // A generous budget (nothing degrades at this size) — but *any*
    // limited budget makes the result ineligible for the cache.
    let job = JobOptions::with_budget(&Budget::with_limit(std::time::Duration::from_secs(60)));
    session
        .submit_certify_cached(
            Some(Arc::clone(&cache)),
            &key,
            Arc::new(generators::uniform_unit_square(n, seed)),
            OwnedNetwork::center_star(n, 0),
            alpha,
            CertifyOptions::exact(),
            job,
        )
        .expect("admitted")
        .wait()
        .expect("certify succeeded");
    assert!(
        cache.get(&key).is_none(),
        "budgeted result must not be cached (no put)"
    );
    assert_eq!(cache.entry_count().unwrap(), 0);
}
