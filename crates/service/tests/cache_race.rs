//! Concurrent writers racing one cache key under fault injection must
//! converge: exactly one valid entry, no `.tmp` survivors. Own process
//! (integration test binary) because the injection probability is
//! process-global.

use std::fs;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::Arc;

use gncg_json::{canon, object, Value};
use gncg_parallel::fault;
use gncg_service::cache::ResultCache;

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("gncg_cache_race_{tag}_{}", std::process::id()));
    let _ = fs::remove_dir_all(&d);
    d
}

#[test]
fn racing_writers_leave_one_valid_entry_and_no_tmp_survivors() {
    let cache = Arc::new(ResultCache::at(tmpdir("writers")).unwrap());
    let payload = object(vec![
        ("beta", Value::Number(1.5)),
        ("gamma", Value::Number(2.0)),
    ]);
    let key = canon::content_key(&payload);

    // Every writer retries through injected crashes until its put (or a
    // sibling's) lands — the same discipline the fault soaks hold the
    // parallel substrate to.
    fault::set_injection_probability(0.3);
    let threads: Vec<_> = (0..8)
        .map(|_| {
            let cache = Arc::clone(&cache);
            let payload = payload.clone();
            let key = key.clone();
            std::thread::spawn(move || {
                let mut attempts = 0;
                loop {
                    attempts += 1;
                    assert!(attempts < 10_000, "writer livelocked");
                    match catch_unwind(AssertUnwindSafe(|| cache.put(&key, &payload))) {
                        Ok(Ok(())) => break,
                        Ok(Err(e)) => panic!("non-injected put failure: {e}"),
                        Err(p) => assert!(fault::is_injected(&*p), "real panic escaped put"),
                    }
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    fault::set_injection_probability(0.0);

    // Exactly one file total: the valid entry. No tmp debris, nothing
    // quarantined (no writer ever installs an invalid entry).
    let names: Vec<String> = fs::read_dir(cache.dir())
        .unwrap()
        .flatten()
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .collect();
    assert_eq!(names, vec![format!("{key}.json")], "debris: {names:?}");
    let got = cache.get(&key).expect("entry valid after the race");
    assert_eq!(
        canon::canonical_string(&got),
        canon::canonical_string(&payload)
    );
}
