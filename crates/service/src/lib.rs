//! gncg-service: a long-lived concurrent job engine over the GNCG
//! solvers.
//!
//! Repro binaries and the CLI used to call the solver crates directly,
//! each invocation owning the whole process. A [`Session`] instead keeps
//! one [`ThreadPool`] alive and accepts typed jobs — certification, best
//! responses, exact optima, dynamics runs, whole sweeps — that run
//! concurrently and resolve through [`JobHandle`]s to the *same* result
//! types the direct calls return ([`CertifyReport`], [`Outcome`], …).
//! Because every kernel underneath is deterministic-by-construction
//! (fixed chunk reductions, canonical tie-breaks), results are
//! bit-identical to the sequential path no matter how jobs interleave.
//!
//! # Admission control and backpressure
//!
//! Jobs enter one of two bounded lanes by [`Priority`]: `Interactive`
//! (small certify/best-response probes) or `Batch` (exact optima,
//! sweeps). A full lane rejects at submit time with
//! [`SubmitError::QueueFull`] — callers see backpressure instead of the
//! engine buffering unboundedly. Dispatch prefers the interactive lane
//! but lets a batch job through after every few interactive ones, so a
//! long sweep neither starves probes nor is starved by them.
//!
//! # Budgets, cancellation, shutdown
//!
//! Every job carries its own [`Budget`] (defaulting to the session's
//! configured budget): [`JobHandle::cancel`] trips its token, a queued
//! job whose budget is already exhausted resolves to
//! [`JobError::Cancelled`] without running, and solver jobs thread the
//! budget into their [`SolverConfig`] so mid-flight cancellation
//! degrades along the existing exact→certified ladder rather than
//! aborting. [`Session::shutdown`] either drains
//! ([`Shutdown::Drain`]) or cancels every outstanding budget
//! ([`Shutdown::Cancel`]) — sweep closures observe the cancellation via
//! their [`JobCtx`] and can checkpoint before returning.
//!
//! # Fault isolation and observability
//!
//! Each job runs under `catch_unwind`: a panicking job resolves its own
//! handle to [`JobError::Panicked`] and *nothing else* — the pool and
//! every other job are untouched. Each job opens a `service.job.*` trace
//! span, and the service keeps deterministic admission counters
//! (`service_enqueued`, `service_dequeued`, `service_rejected`).

pub mod cache;

use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use gncg_config::GncgConfig;
use gncg_game::approx::{ApproxCertifyOptions, ApproxCertifyReport};
use gncg_game::best_response::BestResponse;
use gncg_game::certify::{CertifyOptions, CertifyReport};
use gncg_game::exact::ExactOptimum;
use gncg_game::{
    dynamics, EdgeWeights, GameSpec, Outcome, OwnedNetwork, SolveOptions, SolverConfig,
};
use gncg_json::{FromJson, ToJson};
use gncg_parallel::pool::ThreadPool;
use gncg_parallel::{with_budget, with_max_threads, Budget};

/// Shared-ownership edge-weight oracle a job can be built over.
pub type SharedWeights = Arc<dyn EdgeWeights + Send + Sync>;

/// Which lane a job is dispatched from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Priority {
    /// Small, latency-sensitive work (certify probes, best responses).
    Interactive,
    /// Long-running work (exact optima, sweeps) that must not crowd out
    /// the interactive lane.
    Batch,
}

/// The kind of a job, for trace spans and diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobKind {
    /// A (β, γ) certification of one profile.
    Certify,
    /// An exact best response for one agent.
    BestResponse,
    /// An exact social optimum.
    ExactOpt,
    /// A response-dynamics run.
    Dynamics,
    /// A caller-supplied sweep closure (typically a checkpointing
    /// experiment driver).
    Sweep,
}

impl JobKind {
    /// The trace-span name jobs of this kind run under.
    pub fn span_name(self) -> &'static str {
        match self {
            JobKind::Certify => "service.job.certify",
            JobKind::BestResponse => "service.job.best_response",
            JobKind::ExactOpt => "service.job.exact_opt",
            JobKind::Dynamics => "service.job.dynamics",
            JobKind::Sweep => "service.job.sweep",
        }
    }

    /// The lane jobs of this kind default to.
    pub fn default_priority(self) -> Priority {
        match self {
            JobKind::Certify | JobKind::BestResponse | JobKind::Dynamics => Priority::Interactive,
            JobKind::ExactOpt | JobKind::Sweep => Priority::Batch,
        }
    }

    /// The `(ambient, cancel_on_exhaust)` budget wiring the typed
    /// `submit_*` methods use for this kind. Solver kinds carry the
    /// budget inside their options (`ambient = false`) so the poly-time
    /// fallback bounds stay sound; dynamics installs it ambiently and
    /// maps exhaustion to [`JobError::Cancelled`] (a truncated
    /// trajectory is partial garbage); sweeps install it ambiently but
    /// return their checkpointed partials on purpose. Generic callers
    /// ([`Session::submit_observed`]) get identical semantics per kind.
    pub fn budget_wiring(self) -> (bool, bool) {
        match self {
            JobKind::Certify | JobKind::BestResponse | JobKind::ExactOpt => (false, false),
            JobKind::Dynamics => (true, true),
            JobKind::Sweep => (true, false),
        }
    }
}

/// Why a job did not produce a value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobError {
    /// The job's body panicked; the payload's message. Only this job is
    /// affected — the pool and all other jobs keep running.
    Panicked(String),
    /// The job's budget was exhausted/cancelled before it started (or,
    /// for dynamics, before it finished).
    Cancelled,
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::Panicked(msg) => write!(f, "job panicked: {msg}"),
            JobError::Cancelled => write!(f, "job cancelled"),
        }
    }
}

/// Why a submission was rejected at admission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The target lane is at capacity; retry later or shed load.
    QueueFull {
        /// The lane that was full.
        priority: Priority,
        /// Its configured capacity.
        capacity: usize,
    },
    /// The session is shutting down and admits no new jobs.
    ShuttingDown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull { priority, capacity } => {
                write!(f, "{priority:?} lane full (capacity {capacity})")
            }
            SubmitError::ShuttingDown => write!(f, "session is shutting down"),
        }
    }
}

/// Per-submission knobs. `Default` means: the kind's default lane and
/// the session's default budget.
#[derive(Debug, Clone, Default)]
pub struct JobOptions {
    /// Override the lane (default: [`JobKind::default_priority`]).
    pub priority: Option<Priority>,
    /// Override the job budget (default: the session's configured
    /// budget, unlimited unless `GNCG_BUDGET_MS`/the builder set one).
    pub budget: Option<Budget>,
}

impl JobOptions {
    /// Options pinning the job to a lane.
    pub fn with_priority(priority: Priority) -> Self {
        Self {
            priority: Some(priority),
            ..Self::default()
        }
    }

    /// Options running the job under (a clone of) `budget`.
    pub fn with_budget(budget: &Budget) -> Self {
        Self {
            budget: Some(budget.clone()),
            ..Self::default()
        }
    }
}

/// Context handed to sweep closures: the job's budget, to poll for
/// cooperative cancellation (and checkpoint before returning).
pub struct JobCtx {
    budget: Budget,
}

impl JobCtx {
    /// The job's budget.
    pub fn budget(&self) -> &Budget {
        &self.budget
    }

    /// Has the job been cancelled (handle, shutdown, or deadline)?
    pub fn cancelled(&self) -> bool {
        self.budget.exhausted()
    }
}

// ---------------------------------------------------------------------------
// Job handles
// ---------------------------------------------------------------------------

struct HandleState<T> {
    slot: Mutex<Option<Result<T, JobError>>>,
    cond: Condvar,
}

impl<T> HandleState<T> {
    fn new() -> Arc<Self> {
        Arc::new(Self {
            slot: Mutex::new(None),
            cond: Condvar::new(),
        })
    }

    fn fulfill(&self, result: Result<T, JobError>) {
        let mut slot = self.slot.lock().unwrap_or_else(|p| p.into_inner());
        *slot = Some(result);
        self.cond.notify_all();
    }
}

/// A pending job's result slot. Obtained from the `Session::submit_*`
/// methods; resolve with [`JobHandle::wait`], abort with
/// [`JobHandle::cancel`].
pub struct JobHandle<T> {
    state: Arc<HandleState<T>>,
    budget: Budget,
    kind: JobKind,
}

impl<T> std::fmt::Debug for JobHandle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobHandle")
            .field("kind", &self.kind)
            .field("done", &self.is_done())
            .finish()
    }
}

impl<T> JobHandle<T> {
    /// A handle born resolved: [`JobHandle::wait`] returns `value`
    /// immediately. Used by the cache-aware submits, where a hit never
    /// enters the queue — the caller still gets the uniform handle API.
    fn resolved(kind: JobKind, value: T) -> Self {
        let state = HandleState::new();
        state.fulfill(Ok(value));
        Self {
            state,
            budget: Budget::unlimited(),
            kind,
        }
    }

    /// Block until the job resolves and take its result.
    pub fn wait(self) -> Result<T, JobError> {
        let mut slot = self.state.slot.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            if let Some(result) = slot.take() {
                return result;
            }
            slot = self
                .state
                .cond
                .wait(slot)
                .unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Has the job resolved (successfully or not)?
    pub fn is_done(&self) -> bool {
        self.state
            .slot
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .is_some()
    }

    /// Request cancellation: trips the job's budget token. A job still
    /// queued resolves to [`JobError::Cancelled`] without running; a
    /// running solver job degrades along the exact→certified ladder; a
    /// running sweep observes it via [`JobCtx::cancelled`].
    pub fn cancel(&self) {
        self.budget.cancel();
    }

    /// The job's kind.
    pub fn kind(&self) -> JobKind {
        self.kind
    }
}

// ---------------------------------------------------------------------------
// Session internals
// ---------------------------------------------------------------------------

/// How [`Session::shutdown`] treats outstanding jobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Shutdown {
    /// Stop admitting, run everything already queued to completion.
    Drain,
    /// Stop admitting and cancel every outstanding budget: queued jobs
    /// resolve to [`JobError::Cancelled`] without running, running
    /// solver jobs degrade, running sweeps checkpoint and return early.
    Cancel,
}

struct Ticket {
    run: Box<dyn FnOnce(&JobCtx) + Send>,
    budget: Budget,
    kind: JobKind,
    id: u64,
}

struct Lanes {
    interactive: VecDeque<Ticket>,
    batch: VecDeque<Ticket>,
    /// Consecutive interactive dispatches since the last batch one.
    interactive_streak: u32,
    /// Jobs admitted but not yet fulfilled (queued + running).
    outstanding: usize,
    /// Budgets of every outstanding job, for `Shutdown::Cancel`.
    active_budgets: HashMap<u64, Budget>,
    /// `Some` once any [`Session::shutdown`] call has started. Holds the
    /// *strongest* mode requested so far ([`Shutdown::Cancel`] wins);
    /// admission rejects whenever this is set.
    shutdown_mode: Option<Shutdown>,
    next_id: u64,
}

struct Shared {
    lanes: Mutex<Lanes>,
    idle_cond: Condvar,
    interactive_cap: usize,
    batch_cap: usize,
    /// Per-job cap on nested parallelism (see
    /// [`SessionBuilder::job_threads`]).
    job_threads: Option<usize>,
}

/// After this many consecutive interactive dispatches with batch work
/// waiting, one batch job is dispatched (anti-starvation).
const MAX_INTERACTIVE_STREAK: u32 = 3;

impl Shared {
    fn pop(&self) -> Option<Ticket> {
        let mut lanes = self.lanes.lock().unwrap_or_else(|p| p.into_inner());
        let take_batch = !lanes.batch.is_empty()
            && (lanes.interactive.is_empty() || lanes.interactive_streak >= MAX_INTERACTIVE_STREAK);
        if take_batch {
            lanes.interactive_streak = 0;
            lanes.batch.pop_front()
        } else if let Some(t) = lanes.interactive.pop_front() {
            lanes.interactive_streak += 1;
            Some(t)
        } else {
            None
        }
    }

    fn finish(&self, id: u64) {
        let mut lanes = self.lanes.lock().unwrap_or_else(|p| p.into_inner());
        lanes.active_budgets.remove(&id);
        lanes.outstanding -= 1;
        if lanes.outstanding == 0 {
            self.idle_cond.notify_all();
        }
    }
}

/// One ticket per admitted job is submitted to the pool; each pool
/// worker invocation dispatches the highest-priority eligible job.
fn run_next(shared: &Shared) {
    let Some(ticket) = shared.pop() else {
        return;
    };
    gncg_trace::incr(gncg_trace::Counter::ServiceDequeued);
    let _span = gncg_trace::span(ticket.kind.span_name());
    let ctx = JobCtx {
        budget: ticket.budget.clone(),
    };
    match shared.job_threads {
        Some(k) => with_max_threads(k, || (ticket.run)(&ctx)),
        None => (ticket.run)(&ctx),
    }
    shared.finish(ticket.id);
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Run one job body under the service's panic/cancellation envelope and
/// return its resolution. `ambient` installs the job budget as the
/// ambient budget (dynamics, sweeps); solver jobs instead carry the
/// budget inside their options so the poly-time fallback bounds stay
/// sound. `cancel_on_exhaust` maps a post-run exhausted budget to
/// [`JobError::Cancelled`] (dynamics — a cancelled trajectory is
/// partial garbage; sweeps return checkpointed partials on purpose).
fn run_envelope<T>(
    ctx: &JobCtx,
    ambient: bool,
    cancel_on_exhaust: bool,
    work: impl FnOnce(&JobCtx) -> T,
) -> Result<T, JobError> {
    if ctx.budget.exhausted() {
        return Err(JobError::Cancelled);
    }
    let run = catch_unwind(AssertUnwindSafe(|| {
        if ambient {
            with_budget(&ctx.budget, || work(ctx))
        } else {
            work(ctx)
        }
    }));
    match run {
        Ok(_) if cancel_on_exhaust && ctx.budget.exhausted() => Err(JobError::Cancelled),
        Ok(v) => Ok(v),
        Err(payload) => Err(JobError::Panicked(panic_message(&*payload))),
    }
}

/// Run one job body with the envelope and fulfill `state`.
fn execute<T>(
    state: &HandleState<T>,
    ctx: &JobCtx,
    ambient: bool,
    cancel_on_exhaust: bool,
    work: impl FnOnce(&JobCtx) -> T,
) {
    state.fulfill(run_envelope(ctx, ambient, cancel_on_exhaust, work));
}

// ---------------------------------------------------------------------------
// Session
// ---------------------------------------------------------------------------

/// Builder for a [`Session`] (see [`Session::builder`]).
#[derive(Debug, Clone)]
pub struct SessionBuilder {
    threads: Option<usize>,
    job_threads: Option<usize>,
    default_budget_ms: Option<u64>,
    interactive_cap: usize,
    batch_cap: usize,
}

impl Default for SessionBuilder {
    fn default() -> Self {
        Self {
            threads: None,
            job_threads: None,
            default_budget_ms: None,
            interactive_cap: 256,
            batch_cap: 64,
        }
    }
}

impl SessionBuilder {
    /// Seed the builder from a [`GncgConfig`] (worker count and default
    /// job budget).
    pub fn from_config(cfg: &GncgConfig) -> Self {
        Self {
            threads: cfg.threads,
            default_budget_ms: cfg.budget_ms,
            ..Self::default()
        }
    }

    /// Number of pool workers (default: [`gncg_parallel::num_threads`]).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Cap the *nested* parallelism of each job: a job's internal
    /// `parallel_*` loops use at most `k` workers, so `threads`
    /// concurrent jobs occupy ≈ `threads · k` cores instead of
    /// `threads · num_threads()`.
    pub fn job_threads(mut self, k: usize) -> Self {
        self.job_threads = Some(k);
        self
    }

    /// Default per-job budget in milliseconds (each job gets a fresh
    /// deadline that far in the future at submit time).
    pub fn default_budget_ms(mut self, ms: u64) -> Self {
        self.default_budget_ms = Some(ms);
        self
    }

    /// Lane capacities (interactive, batch). Zero is clamped to 1.
    pub fn queue_capacity(mut self, interactive: usize, batch: usize) -> Self {
        self.interactive_cap = interactive.max(1);
        self.batch_cap = batch.max(1);
        self
    }

    /// Build the session (spawns the worker pool).
    pub fn build(self) -> Session {
        let threads = self.threads.unwrap_or_else(gncg_parallel::num_threads);
        Session {
            shared: Arc::new(Shared {
                lanes: Mutex::new(Lanes {
                    interactive: VecDeque::new(),
                    batch: VecDeque::new(),
                    interactive_streak: 0,
                    outstanding: 0,
                    active_budgets: HashMap::new(),
                    shutdown_mode: None,
                    next_id: 0,
                }),
                idle_cond: Condvar::new(),
                interactive_cap: self.interactive_cap,
                batch_cap: self.batch_cap,
                job_threads: self.job_threads,
            }),
            pool: ThreadPool::new(threads),
            default_budget_ms: self.default_budget_ms,
            result_cache: Mutex::new(None),
        }
    }
}

/// A long-lived concurrent job engine (see the crate docs).
pub struct Session {
    shared: Arc<Shared>,
    pool: ThreadPool,
    default_budget_ms: Option<u64>,
    /// The content-addressed result cache consulted by submits whose
    /// [`SolverConfig`] carries a [`gncg_game::CachePolicy::Keyed`]
    /// policy (see [`Session::attach_result_cache`]).
    result_cache: Mutex<Option<Arc<cache::ResultCache>>>,
}

impl Session {
    /// A session configured from the environment
    /// ([`GncgConfig::from_env`]).
    pub fn new() -> Self {
        SessionBuilder::from_config(&GncgConfig::from_env()).build()
    }

    /// Start building a custom session.
    pub fn builder() -> SessionBuilder {
        SessionBuilder::default()
    }

    /// Number of pool workers.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// The budget a job submitted *now* with default [`JobOptions`]
    /// would run under.
    fn default_budget(&self) -> Budget {
        match self.default_budget_ms {
            Some(ms) => Budget::with_limit(Duration::from_millis(ms)),
            None => Budget::unlimited(),
        }
    }

    /// Attach a content-addressed result cache. Once attached, any
    /// [`Session::submit_certify`] whose [`SolverConfig`] carries
    /// [`gncg_game::CachePolicy::Keyed`] is served from / written back
    /// to this cache (subject to the cache-consistency rule — see
    /// [`gncg_game::CachePolicy`]). Attaching replaces any previous
    /// cache; with none attached, keyed submits silently run uncached.
    pub fn attach_result_cache(&self, cache: Arc<cache::ResultCache>) {
        *self.result_cache.lock().unwrap_or_else(|p| p.into_inner()) = Some(cache);
    }

    /// The currently attached result cache, if any.
    fn attached_cache(&self) -> Option<Arc<cache::ResultCache>> {
        self.result_cache
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .clone()
    }

    /// Admission: reserve a slot in the right lane and hand the pool a
    /// dispatch ticket.
    fn admit(
        &self,
        kind: JobKind,
        priority: Priority,
        budget: Budget,
        run: Box<dyn FnOnce(&JobCtx) + Send>,
    ) -> Result<(), SubmitError> {
        {
            let mut lanes = self.shared.lanes.lock().unwrap_or_else(|p| p.into_inner());
            if lanes.shutdown_mode.is_some() {
                gncg_trace::incr(gncg_trace::Counter::ServiceRejected);
                return Err(SubmitError::ShuttingDown);
            }
            let (lane_len, cap) = match priority {
                Priority::Interactive => (lanes.interactive.len(), self.shared.interactive_cap),
                Priority::Batch => (lanes.batch.len(), self.shared.batch_cap),
            };
            if lane_len >= cap {
                gncg_trace::incr(gncg_trace::Counter::ServiceRejected);
                return Err(SubmitError::QueueFull {
                    priority,
                    capacity: cap,
                });
            }
            let id = lanes.next_id;
            lanes.next_id += 1;
            lanes.outstanding += 1;
            lanes.active_budgets.insert(id, budget.clone());
            let ticket = Ticket {
                run,
                budget,
                kind,
                id,
            };
            match priority {
                Priority::Interactive => lanes.interactive.push_back(ticket),
                Priority::Batch => lanes.batch.push_back(ticket),
            }
        }
        gncg_trace::incr(gncg_trace::Counter::ServiceEnqueued);
        let shared = Arc::clone(&self.shared);
        self.pool.submit(move || run_next(&shared));
        Ok(())
    }

    fn submit_raw<T: Send + 'static>(
        &self,
        kind: JobKind,
        job: JobOptions,
        ambient: bool,
        cancel_on_exhaust: bool,
        work: impl FnOnce(&JobCtx, &Budget) -> T + Send + 'static,
    ) -> Result<JobHandle<T>, SubmitError> {
        let priority = job.priority.unwrap_or_else(|| kind.default_priority());
        let budget = job.budget.unwrap_or_else(|| self.default_budget());
        let state = HandleState::new();
        let run_state = Arc::clone(&state);
        let run_budget = budget.clone();
        self.admit(
            kind,
            priority,
            budget.clone(),
            Box::new(move |ctx| {
                execute(&run_state, ctx, ambient, cancel_on_exhaust, |ctx| {
                    work(ctx, &run_budget)
                });
            }),
        )?;
        Ok(JobHandle {
            state,
            budget,
            kind,
        })
    }

    /// Submit a job with an observer: `done` is invoked **exactly once**
    /// for every admitted job, on the worker thread that resolved it,
    /// with the job's resolution — including jobs cancelled before they
    /// start and jobs that panic. The observer runs *before* the handle
    /// fulfills, so a caller that both observes and waits sees the
    /// callback strictly first.
    ///
    /// The budget wiring (`ambient`, `cancel_on_exhaust`) is derived
    /// from the kind via [`JobKind::budget_wiring`], so an observed
    /// certify behaves exactly like [`Session::submit_certify`] — this
    /// is the hook the `gncg-serve` wire layer uses to stream results
    /// without parking a waiter thread per job.
    ///
    /// `work` receives the job's [`JobCtx`] and (a clone of) its
    /// [`Budget`]; solver callers must thread the budget into their
    /// `*Options` exactly as the typed submits do, or the degradation
    /// ladder will not engage.
    pub fn submit_observed<T, F, D>(
        &self,
        kind: JobKind,
        job: JobOptions,
        work: F,
        done: D,
    ) -> Result<JobHandle<T>, SubmitError>
    where
        T: Send + 'static,
        F: FnOnce(&JobCtx, &Budget) -> T + Send + 'static,
        D: FnOnce(&Result<T, JobError>) + Send + 'static,
    {
        let (ambient, cancel_on_exhaust) = kind.budget_wiring();
        let priority = job.priority.unwrap_or_else(|| kind.default_priority());
        let budget = job.budget.unwrap_or_else(|| self.default_budget());
        let state = HandleState::new();
        let run_state = Arc::clone(&state);
        let run_budget = budget.clone();
        self.admit(
            kind,
            priority,
            budget.clone(),
            Box::new(move |ctx| {
                let result = run_envelope(ctx, ambient, cancel_on_exhaust, |ctx| {
                    work(ctx, &run_budget)
                });
                done(&result);
                run_state.fulfill(result);
            }),
        )?;
        Ok(JobHandle {
            state,
            budget,
            kind,
        })
    }

    /// Submit a (β, γ) certification job. The job budget replaces
    /// `cfg.budget`, so [`JobHandle::cancel`] degrades the report along
    /// the exact→certified ladder exactly as a direct budgeted
    /// [`gncg_game::certify::certify`] call would.
    ///
    /// When `cfg.cache` is [`gncg_game::CachePolicy::Keyed`] and a
    /// cache is attached ([`Session::attach_result_cache`]), the job
    /// runs through the content-addressed result cache: on a valid
    /// cached entry the returned handle is born resolved (nothing is
    /// queued); on a miss the report is written back from the worker.
    /// The *caller* owns the soundness of the key (it must be the
    /// content address of the canonical instance + options, see
    /// `gncg_json::canon::content_key`).
    pub fn submit_certify(
        &self,
        w: SharedWeights,
        net: OwnedNetwork,
        alpha: f64,
        cfg: SolverConfig,
        job: JobOptions,
    ) -> Result<JobHandle<CertifyReport>, SubmitError> {
        match cfg.cache.key().map(str::to_string) {
            Some(key) => {
                let cache = self.attached_cache();
                self.certify_cached_impl(cache, &key, w, net, alpha, cfg, job)
            }
            None => self.submit_raw(JobKind::Certify, job, false, false, move |_, budget| {
                gncg_game::certify::certify(&*w, &net, alpha, &cfg.with_budget(budget))
            }),
        }
    }

    /// The keyed-cache certify path, shared by [`Session::submit_certify`]
    /// (with the attached cache) and the deprecated
    /// `submit_certify_cached` (with an explicit one).
    ///
    /// Cache-consistency rule: the cache stores only deterministic,
    /// budget-free results, so the cache is **bypassed entirely** (no
    /// get, no put) whenever the job runs under a limited budget —
    /// budgeted certification can degrade along the exact→certified
    /// ladder at a nondeterministic point, and such a report must never
    /// be served to a later caller that asked for the unbudgeted
    /// answer. With no cache this is exactly an uncached certify.
    #[allow(clippy::too_many_arguments)]
    fn certify_cached_impl(
        &self,
        cache: Option<Arc<cache::ResultCache>>,
        key: &str,
        w: SharedWeights,
        net: OwnedNetwork,
        alpha: f64,
        cfg: SolverConfig,
        job: JobOptions,
    ) -> Result<JobHandle<CertifyReport>, SubmitError> {
        let budget_limited = job
            .budget
            .as_ref()
            .map(|b| b.deadline.is_some())
            .unwrap_or_else(|| self.default_budget().deadline.is_some());
        let Some(cache) = cache.filter(|_| !budget_limited) else {
            return self.submit_certify(w, net, alpha, cfg.without_cache(), job);
        };
        if let Some(payload) = cache.get(key) {
            if let Ok(report) = CertifyReport::from_json(&payload) {
                return Ok(JobHandle::resolved(JobKind::Certify, report));
            }
            // Hash-valid but schema-incompatible (e.g. written by a
            // different version): recompute and overwrite below.
        }
        let key = key.to_string();
        self.submit_raw(JobKind::Certify, job, false, false, move |_, budget| {
            let report = gncg_game::certify::certify(&*w, &net, alpha, &cfg.with_budget(budget));
            let _ = cache.put(&key, &report.to_json());
            report
        })
    }

    /// Deprecated shim for the pre-[`SolverConfig`] signature.
    #[deprecated(note = "build a `SolverConfig` and call `submit_certify` instead")]
    pub fn submit_certify_with_options(
        &self,
        w: SharedWeights,
        net: OwnedNetwork,
        alpha: f64,
        opts: CertifyOptions,
        job: JobOptions,
    ) -> Result<JobHandle<CertifyReport>, SubmitError> {
        self.submit_certify(w, net, alpha, SolverConfig::from(opts), job)
    }

    /// Submit a (β, γ) certification job through an explicitly supplied
    /// result cache.
    #[deprecated(
        note = "attach the cache with `Session::attach_result_cache` and call \
                `submit_certify` with a `SolverConfig` carrying `with_cache_key` instead"
    )]
    #[allow(clippy::too_many_arguments)]
    pub fn submit_certify_cached(
        &self,
        cache: Option<Arc<cache::ResultCache>>,
        key: &str,
        w: SharedWeights,
        net: OwnedNetwork,
        alpha: f64,
        opts: CertifyOptions,
        job: JobOptions,
    ) -> Result<JobHandle<CertifyReport>, SubmitError> {
        self.certify_cached_impl(cache, key, w, net, alpha, SolverConfig::from(opts), job)
    }

    /// Submit a spanner-backed *bracketed* certification job
    /// ([`gncg_game::approx::certify_approx`]) — the large-n
    /// counterpart of [`Session::submit_certify`], sharing its job
    /// kind, lane, and admission behaviour. Takes a concrete point set
    /// (the spanner and grid constructions are geometric; a bare
    /// [`EdgeWeights`] oracle is not enough). The computation is
    /// polynomial with no exponential part to degrade, so the job
    /// budget only gates the start: a budget cancelled before dispatch
    /// resolves the handle to [`JobError::Cancelled`], exactly like
    /// every other kind.
    pub fn submit_certify_approx(
        &self,
        ps: Arc<gncg_geometry::PointSet>,
        net: OwnedNetwork,
        alpha: f64,
        cfg: SolverConfig,
        job: JobOptions,
    ) -> Result<JobHandle<ApproxCertifyReport>, SubmitError> {
        self.submit_raw(JobKind::Certify, job, false, false, move |_, _| {
            gncg_game::approx::certify_approx(&ps, &net, alpha, &cfg)
        })
    }

    /// Deprecated shim for the pre-[`SolverConfig`] signature. Unlike
    /// the canonical entry it honours the full
    /// [`ApproxCertifyOptions`] knob space (`lo_mode`, spanner caps);
    /// expert callers who need those knobs should call
    /// [`gncg_game::approx::certify_approx_tuned`] through
    /// [`Session::submit_observed`] instead.
    #[deprecated(note = "build a `SolverConfig` and call `submit_certify_approx` instead")]
    pub fn submit_certify_approx_with_options(
        &self,
        ps: Arc<gncg_geometry::PointSet>,
        net: OwnedNetwork,
        alpha: f64,
        opts: ApproxCertifyOptions,
        job: JobOptions,
    ) -> Result<JobHandle<ApproxCertifyReport>, SubmitError> {
        self.submit_raw(JobKind::Certify, job, false, false, move |_, _| {
            gncg_game::approx::certify_approx_tuned(&ps, &net, alpha, opts)
        })
    }

    /// Submit an exact best-response job for agent `u`. The job budget
    /// replaces `cfg.budget`; the cost model in `cfg` is honored
    /// (default `ModelKind::SumDistances` — chain
    /// [`SolverConfig::with_model`] to thread the `GNCG_MODEL` choice
    /// through).
    pub fn submit_best_response(
        &self,
        w: SharedWeights,
        net: OwnedNetwork,
        alpha: f64,
        u: usize,
        cfg: SolverConfig,
        job: JobOptions,
    ) -> Result<JobHandle<Outcome<BestResponse>>, SubmitError> {
        self.submit_raw(
            JobKind::BestResponse,
            job,
            false,
            false,
            move |_, budget| {
                gncg_game::best_response::exact_best_response(
                    &*w,
                    &net,
                    alpha,
                    u,
                    &cfg.with_budget(budget),
                )
            },
        )
    }

    /// Deprecated shim for the pre-[`SolverConfig`] signature.
    #[deprecated(note = "build a `SolverConfig` and call `submit_best_response` instead")]
    #[allow(clippy::too_many_arguments)]
    pub fn submit_best_response_with_options(
        &self,
        w: SharedWeights,
        net: OwnedNetwork,
        alpha: f64,
        u: usize,
        opts: SolveOptions,
        job: JobOptions,
    ) -> Result<JobHandle<Outcome<BestResponse>>, SubmitError> {
        self.submit_best_response(w, net, alpha, u, SolverConfig::from(opts), job)
    }

    /// Submit an exact social-optimum job (batch lane by default). The
    /// job budget replaces `cfg.budget`; the cost model in `cfg` is
    /// honored.
    pub fn submit_exact_optimum(
        &self,
        w: SharedWeights,
        alpha: f64,
        cfg: SolverConfig,
        job: JobOptions,
    ) -> Result<JobHandle<Outcome<ExactOptimum>>, SubmitError> {
        self.submit_raw(JobKind::ExactOpt, job, false, false, move |_, budget| {
            gncg_game::exact::exact_social_optimum(&*w, alpha, &cfg.with_budget(budget))
        })
    }

    /// Deprecated shim for the pre-[`SolverConfig`] signature.
    #[deprecated(note = "build a `SolverConfig` and call `submit_exact_optimum` instead")]
    pub fn submit_exact_optimum_with_options(
        &self,
        w: SharedWeights,
        alpha: f64,
        opts: SolveOptions,
        job: JobOptions,
    ) -> Result<JobHandle<Outcome<ExactOptimum>>, SubmitError> {
        self.submit_exact_optimum(w, alpha, SolverConfig::from(opts), job)
    }

    /// Submit a response-dynamics run under `cfg` (cost model +
    /// edge-formation rule + prune mode; [`SolverConfig::default`]
    /// reproduces the historical behaviour exactly). A budget cancelled
    /// mid-run resolves the handle to [`JobError::Cancelled`] (a
    /// truncated trajectory has no sound fallback).
    #[allow(clippy::too_many_arguments)]
    pub fn submit_dynamics(
        &self,
        w: SharedWeights,
        start: OwnedNetwork,
        alpha: f64,
        rule: dynamics::ResponseRule,
        max_steps: usize,
        cfg: SolverConfig,
        job: JobOptions,
    ) -> Result<JobHandle<dynamics::Outcome>, SubmitError> {
        self.submit_raw(JobKind::Dynamics, job, true, true, move |_, _| {
            dynamics::run_spec(
                &*w,
                &start,
                alpha,
                rule,
                dynamics::AgentOrder::RoundRobin,
                max_steps,
                &cfg,
            )
        })
    }

    /// Deprecated shim for the pre-[`SolverConfig`] signature.
    #[deprecated(note = "build a `SolverConfig` and call `submit_dynamics` instead")]
    #[allow(clippy::too_many_arguments)]
    pub fn submit_dynamics_with_spec(
        &self,
        w: SharedWeights,
        start: OwnedNetwork,
        alpha: f64,
        rule: dynamics::ResponseRule,
        max_steps: usize,
        spec: GameSpec,
        job: JobOptions,
    ) -> Result<JobHandle<dynamics::Outcome>, SubmitError> {
        self.submit_dynamics(
            w,
            start,
            alpha,
            rule,
            max_steps,
            SolverConfig::from(spec),
            job,
        )
    }

    /// Submit a sweep closure (batch lane by default). The closure
    /// receives the job's [`JobCtx`] and should poll
    /// [`JobCtx::cancelled`] between units, checkpointing (e.g. via
    /// `SweepCheckpoint`) and returning early when cancelled; its return
    /// value resolves the handle either way.
    pub fn submit_sweep<T, F>(&self, job: JobOptions, f: F) -> Result<JobHandle<T>, SubmitError>
    where
        T: Send + 'static,
        F: FnOnce(&JobCtx) -> T + Send + 'static,
    {
        self.submit_raw(JobKind::Sweep, job, true, false, move |ctx, _| f(ctx))
    }

    /// Block until every admitted job has resolved. Also waits for the
    /// pool's dispatch tickets to fully retire, so worker-thread trace
    /// counters (e.g. `service_dequeued`) are flushed into the
    /// process-wide totals before this returns.
    pub fn wait_idle(&self) {
        {
            let mut lanes = self.shared.lanes.lock().unwrap_or_else(|p| p.into_inner());
            while lanes.outstanding > 0 {
                lanes = self
                    .shared
                    .idle_cond
                    .wait(lanes)
                    .unwrap_or_else(|p| p.into_inner());
            }
        }
        self.pool.wait();
    }

    /// Shut the session down: stop admitting, then either drain or
    /// cancel outstanding work, and block until idle.
    ///
    /// # Idempotence and concurrent-shutdown ordering
    ///
    /// `shutdown` may be called any number of times, from any threads,
    /// concurrently — the canonical race being a signal handler calling
    /// `shutdown(Cancel)` while `Drop` runs `shutdown(Drain)`. The
    /// resolution is monotone under one lock:
    ///
    /// - the session records the **strongest** mode requested so far
    ///   ([`Shutdown::Cancel`] > [`Shutdown::Drain`]); a later `Drain`
    ///   never de-escalates an earlier `Cancel`;
    /// - the first `Cancel` to arrive cancels every outstanding budget
    ///   exactly once, *including jobs admitted after an earlier
    ///   `Drain` began waiting* (none can exist, since admission closes
    ///   with the first call, but queued-not-yet-run jobs are covered);
    /// - every caller blocks in [`Session::wait_idle`] until all
    ///   admitted jobs have resolved, so whichever of `Drop`/signal
    ///   returns last still observes a fully quiesced session.
    ///
    /// Hence `Drain ∥ Cancel` in any interleaving behaves like `Cancel`
    /// for all still-queued work, and repeated calls are no-ops beyond
    /// the wait.
    pub fn shutdown(&self, mode: Shutdown) {
        {
            let mut lanes = self.shared.lanes.lock().unwrap_or_else(|p| p.into_inner());
            let escalate = match (lanes.shutdown_mode, mode) {
                (None, m) => {
                    lanes.shutdown_mode = Some(m);
                    m == Shutdown::Cancel
                }
                (Some(Shutdown::Drain), Shutdown::Cancel) => {
                    lanes.shutdown_mode = Some(Shutdown::Cancel);
                    true
                }
                // repeat Drain, repeat Cancel, or Drain-after-Cancel:
                // nothing to change (budgets are already cancelled and
                // admission is already closed)
                _ => false,
            };
            if escalate {
                for budget in lanes.active_budgets.values() {
                    budget.cancel();
                }
            }
        }
        self.wait_idle();
    }
}

impl Default for Session {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        // a dropped session must not abandon admitted jobs: their
        // handles would never resolve
        self.shutdown(Shutdown::Drain);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gncg_geometry::generators;

    fn small_instance(n: usize, seed: u64) -> (SharedWeights, OwnedNetwork) {
        let ps = generators::uniform_unit_square(n, seed);
        let net = OwnedNetwork::center_star(n, 0);
        (Arc::new(ps), net)
    }

    #[test]
    fn certify_job_matches_direct_call() {
        let (w, net) = small_instance(6, 3);
        let direct = gncg_game::certify::certify(&*w, &net, 1.5, &SolverConfig::exact());
        let session = Session::builder().threads(2).build();
        let handle = session
            .submit_certify(
                Arc::clone(&w),
                net.clone(),
                1.5,
                SolverConfig::exact(),
                JobOptions::default(),
            )
            .expect("admitted");
        let report = handle.wait().expect("job succeeded");
        assert_eq!(
            report.beta_exact.unwrap().to_bits(),
            direct.beta_exact.unwrap().to_bits()
        );
        assert_eq!(report.social_cost.to_bits(), direct.social_cost.to_bits());
        assert_eq!(
            report.gamma_exact.unwrap().to_bits(),
            direct.gamma_exact.unwrap().to_bits()
        );
    }

    #[test]
    fn certify_approx_job_matches_direct_call_and_brackets_exact() {
        let ps = Arc::new(generators::uniform_unit_square(20, 5));
        let net = OwnedNetwork::center_star(20, 0);
        let direct = gncg_game::approx::certify_approx(&ps, &net, 1.5, &SolverConfig::default());
        let session = Session::builder().threads(2).build();
        let handle = session
            .submit_certify_approx(
                Arc::clone(&ps),
                net.clone(),
                1.5,
                SolverConfig::default(),
                JobOptions::default(),
            )
            .expect("admitted");
        let report = handle.wait().expect("job succeeded");
        assert_eq!(report.beta_lo.to_bits(), direct.beta_lo.to_bits());
        assert_eq!(report.beta_hi.to_bits(), direct.beta_hi.to_bits());
        assert_eq!(report.social_hi.to_bits(), direct.social_hi.to_bits());
        // the bracket really contains the exact certified figure
        let exact = gncg_game::certify::certify(&*ps, &net, 1.5, &SolverConfig::bounds_only());
        assert!(report.beta_lo <= exact.beta_upper && exact.beta_upper <= report.beta_hi);
        // a dead budget still cancels before start, like every kind
        let dead = Budget::unlimited();
        dead.cancel();
        let cancelled = session
            .submit_certify_approx(
                Arc::clone(&ps),
                net,
                1.5,
                SolverConfig::default(),
                JobOptions::with_budget(&dead),
            )
            .expect("admitted");
        assert_eq!(cancelled.wait(), Err(JobError::Cancelled));
    }

    #[test]
    fn panicking_sweep_fails_alone() {
        let session = Session::builder().threads(2).build();
        let bad = session
            .submit_sweep(JobOptions::default(), |_| -> i32 {
                panic!("sweep blew up")
            })
            .expect("admitted");
        let good = session
            .submit_sweep(JobOptions::default(), |_| 41 + 1)
            .expect("admitted");
        match bad.wait() {
            Err(JobError::Panicked(msg)) => assert!(msg.contains("sweep blew up")),
            other => panic!("expected panic, got {other:?}"),
        }
        assert_eq!(good.wait(), Ok(42));
        // the pool stays healthy for later submissions
        let again = session
            .submit_sweep(JobOptions::default(), |_| 7)
            .expect("admitted");
        assert_eq!(again.wait(), Ok(7));
    }

    #[test]
    fn cancelled_before_start_never_runs() {
        let session = Session::builder().threads(1).build();
        let dead = Budget::unlimited();
        dead.cancel();
        let handle = session
            .submit_sweep(JobOptions::with_budget(&dead), |_| 1)
            .expect("admitted");
        assert_eq!(handle.wait(), Err(JobError::Cancelled));
    }

    #[test]
    fn queue_full_rejects_with_backpressure() {
        // a 1-worker session occupied by a blocker, with a 1-deep batch
        // lane: the next-but-one batch submission must be rejected
        let session = Session::builder().threads(1).queue_capacity(1, 1).build();
        let (block_tx, block_rx) = std::sync::mpsc::channel::<()>();
        let blocker = session
            .submit_sweep(JobOptions::default(), move |_| {
                block_rx.recv().ok();
                0
            })
            .expect("admitted");
        // wait until the blocker has been dequeued, so the lane is empty
        while !{
            let lanes = session.shared.lanes.lock().unwrap();
            lanes.batch.is_empty()
        } {
            std::thread::yield_now();
        }
        let queued = session
            .submit_sweep(JobOptions::default(), |_| 1)
            .expect("one fits in the lane");
        let rejected = session.submit_sweep(JobOptions::default(), |_| 2);
        match rejected {
            Err(SubmitError::QueueFull { priority, capacity }) => {
                assert_eq!(priority, Priority::Batch);
                assert_eq!(capacity, 1);
            }
            other => panic!("expected QueueFull, got {other:?}"),
        }
        block_tx.send(()).unwrap();
        assert_eq!(blocker.wait(), Ok(0));
        assert_eq!(queued.wait(), Ok(1));
    }

    #[test]
    fn batch_not_starved_by_interactive_stream() {
        // 1 worker, a stream of interactive jobs queued ahead of one
        // batch job: the batch job must be dispatched after at most
        // MAX_INTERACTIVE_STREAK interactive ones, not last
        let session = Session::builder().threads(1).build();
        let order = Arc::new(Mutex::new(Vec::new()));
        let (block_tx, block_rx) = std::sync::mpsc::channel::<()>();
        let blocker = session
            .submit_sweep(
                JobOptions::with_priority(Priority::Interactive),
                move |_| {
                    block_rx.recv().ok();
                    0usize
                },
            )
            .expect("admitted");
        let mut handles = Vec::new();
        for i in 0..8usize {
            let order = Arc::clone(&order);
            handles.push(
                session
                    .submit_sweep(
                        JobOptions::with_priority(Priority::Interactive),
                        move |_| {
                            order.lock().unwrap().push(format!("i{i}"));
                            i
                        },
                    )
                    .expect("admitted"),
            );
        }
        let border = Arc::clone(&order);
        let batch = session
            .submit_sweep(JobOptions::with_priority(Priority::Batch), move |_| {
                border.lock().unwrap().push("batch".to_string());
                99usize
            })
            .expect("admitted");
        block_tx.send(()).unwrap();
        blocker.wait().unwrap();
        for h in handles {
            h.wait().unwrap();
        }
        batch.wait().unwrap();
        let order = order.lock().unwrap();
        let pos = order.iter().position(|s| s == "batch").unwrap();
        assert!(
            pos <= MAX_INTERACTIVE_STREAK as usize,
            "batch dispatched at position {pos} of {order:?}"
        );
    }

    /// A sweep job that signals once it is running on the worker, then
    /// blocks until released. The handshake makes the shutdown tests
    /// deterministic: without it, `shutdown(Cancel)` can win the race
    /// to the lane and cancel the *blocker* before the worker dequeues
    /// it, dropping the receiver and poisoning the release send.
    fn blocking_sweep(session: &Session) -> (JobHandle<i32>, std::sync::mpsc::Sender<()>) {
        let (block_tx, block_rx) = std::sync::mpsc::channel::<()>();
        let (started_tx, started_rx) = std::sync::mpsc::channel::<()>();
        let blocker = session
            .submit_sweep(JobOptions::default(), move |_| {
                started_tx.send(()).ok();
                block_rx.recv().ok();
                0
            })
            .expect("admitted");
        started_rx.recv().expect("blocker reached the worker");
        (blocker, block_tx)
    }

    #[test]
    fn shutdown_cancel_resolves_queued_jobs_as_cancelled() {
        let session = Session::builder().threads(1).build();
        let (blocker, block_tx) = blocking_sweep(&session);
        let queued = session
            .submit_sweep(JobOptions::default(), |_| 1)
            .expect("admitted");
        // cancel *before* the blocker is released, so the queued job is
        // deterministically still in the lane when its budget trips
        std::thread::scope(|s| {
            let t = s.spawn(|| session.shutdown(Shutdown::Cancel));
            while !queued.budget.exhausted() {
                std::thread::yield_now();
            }
            block_tx.send(()).unwrap();
            t.join().unwrap();
        });
        assert_eq!(queued.wait(), Err(JobError::Cancelled));
        assert_eq!(blocker.wait(), Ok(0));
        // no new admissions after shutdown
        match session.submit_sweep(JobOptions::default(), |_| 2) {
            Err(SubmitError::ShuttingDown) => {}
            other => panic!("expected ShuttingDown, got {other:?}"),
        }
    }

    #[test]
    fn concurrent_drain_and_cancel_shutdown_is_race_free() {
        // the canonical double-shutdown: a signal path calls
        // shutdown(Cancel) while Drop (or another thread) calls
        // shutdown(Drain). Both must return, the stronger mode must
        // win for still-queued work, and nothing may deadlock.
        for round in 0..8u64 {
            let session = Session::builder().threads(1).build();
            let (blocker, block_tx) = blocking_sweep(&session);
            let queued = session
                .submit_sweep(JobOptions::default(), |_| 1)
                .expect("admitted");
            std::thread::scope(|s| {
                // alternate which mode races ahead
                let (first, second) = if round % 2 == 0 {
                    (Shutdown::Drain, Shutdown::Cancel)
                } else {
                    (Shutdown::Cancel, Shutdown::Drain)
                };
                let session = &session;
                let t1 = s.spawn(move || session.shutdown(first));
                let t2 = s.spawn(move || session.shutdown(second));
                // Cancel participated, so the queued job's budget must
                // trip even while the blocker still occupies the worker
                while !queued.budget.exhausted() {
                    std::thread::yield_now();
                }
                block_tx.send(()).unwrap();
                t1.join().unwrap();
                t2.join().unwrap();
            });
            assert_eq!(blocker.wait(), Ok(0));
            assert_eq!(queued.wait(), Err(JobError::Cancelled));
            // a third, late shutdown is a no-op that still returns
            session.shutdown(Shutdown::Drain);
            session.shutdown(Shutdown::Cancel);
            // Drop will run shutdown(Drain) once more — also a no-op
        }
    }

    #[test]
    fn shutdown_drain_then_cancel_escalates_once() {
        let session = Session::builder().threads(1).build();
        let (blocker, block_tx) = blocking_sweep(&session);
        let queued = session
            .submit_sweep(JobOptions::default(), |_| 1)
            .expect("admitted");
        std::thread::scope(|s| {
            let drain = s.spawn(|| session.shutdown(Shutdown::Drain));
            // Drain alone must not cancel anything
            assert!(!queued.budget.exhausted());
            let cancel = s.spawn(|| session.shutdown(Shutdown::Cancel));
            while !queued.budget.exhausted() {
                std::thread::yield_now();
            }
            block_tx.send(()).unwrap();
            drain.join().unwrap();
            cancel.join().unwrap();
        });
        assert_eq!(queued.wait(), Err(JobError::Cancelled));
        assert_eq!(blocker.wait(), Ok(0));
    }

    #[test]
    fn observed_done_callback_fires_exactly_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let session = Session::builder().threads(2).build();
        let calls = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&calls);
        let handle = session
            .submit_observed(
                JobKind::Sweep,
                JobOptions::default(),
                |_, _| 40 + 2,
                move |r| {
                    assert_eq!(r, &Ok(42));
                    c.fetch_add(1, Ordering::SeqCst);
                },
            )
            .expect("admitted");
        assert_eq!(handle.wait(), Ok(42));
        // observer ran before the handle fulfilled
        assert_eq!(calls.load(Ordering::SeqCst), 1);
        session.wait_idle();
        assert_eq!(calls.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn observed_callback_covers_cancelled_and_panicked() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let session = Session::builder().threads(1).build();
        // cancelled before start: never runs, but the observer still fires
        let dead = Budget::unlimited();
        dead.cancel();
        let cancelled_seen = Arc::new(AtomicUsize::new(0));
        let cs = Arc::clone(&cancelled_seen);
        let h1 = session
            .submit_observed(
                JobKind::Sweep,
                JobOptions::with_budget(&dead),
                |_, _| 1,
                move |r| {
                    assert_eq!(r, &Err(JobError::Cancelled));
                    cs.fetch_add(1, Ordering::SeqCst);
                },
            )
            .expect("admitted");
        // panicking body: the observer sees Panicked, pool survives
        let panicked_seen = Arc::new(AtomicUsize::new(0));
        let ps = Arc::clone(&panicked_seen);
        let h2 = session
            .submit_observed(
                JobKind::Sweep,
                JobOptions::default(),
                |_, _| -> i32 { panic!("observed boom") },
                move |r| {
                    assert!(matches!(r, Err(JobError::Panicked(m)) if m.contains("observed boom")));
                    ps.fetch_add(1, Ordering::SeqCst);
                },
            )
            .expect("admitted");
        assert_eq!(h1.wait(), Err(JobError::Cancelled));
        assert!(matches!(h2.wait(), Err(JobError::Panicked(_))));
        assert_eq!(cancelled_seen.load(Ordering::SeqCst), 1);
        assert_eq!(panicked_seen.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn observed_certify_matches_typed_submit_bit_for_bit() {
        let (w, net) = small_instance(6, 9);
        let session = Session::builder().threads(2).build();
        let typed = session
            .submit_certify(
                Arc::clone(&w),
                net.clone(),
                1.5,
                SolverConfig::exact(),
                JobOptions::default(),
            )
            .expect("admitted")
            .wait()
            .expect("typed ok");
        let wo = Arc::clone(&w);
        let no = net.clone();
        let observed = session
            .submit_observed(
                JobKind::Certify,
                JobOptions::default(),
                move |_, budget| {
                    gncg_game::certify::certify(
                        &*wo,
                        &no,
                        1.5,
                        &SolverConfig::exact().with_budget(budget),
                    )
                },
                |_| {},
            )
            .expect("admitted")
            .wait()
            .expect("observed ok");
        assert_eq!(
            typed.beta_exact.unwrap().to_bits(),
            observed.beta_exact.unwrap().to_bits()
        );
        assert_eq!(typed.social_cost.to_bits(), observed.social_cost.to_bits());
    }

    #[test]
    fn job_threads_cap_reaches_job_bodies() {
        let session = Session::builder().threads(2).job_threads(1).build();
        let handle = session
            .submit_sweep(JobOptions::default(), |_| {
                gncg_parallel::current_max_threads()
            })
            .expect("admitted");
        assert_eq!(handle.wait(), Ok(Some(1)));
    }
}
