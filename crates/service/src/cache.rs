//! Content-addressed result cache.
//!
//! One file per entry, named by the content key (the SHA-256 of the
//! canonical instance + options JSON, see `gncg_json::canon`), so two
//! sweeps that describe the same computation — whatever their field
//! order, float spelling, or range syntax — share the entry. The cache
//! stores only *deterministic, budget-free* computations: a unit that
//! carries a wall-clock budget can degrade nondeterministically, so the
//! sweep engine bypasses the cache entirely (no get, no put) for it.
//!
//! # Entry format and self-verification
//!
//! ```text
//! {"key":"<hex>","payload":<value>,"payload_sha":"<hex>","v":1}
//! ```
//!
//! written as canonical compact JSON. `payload_sha` is the SHA-256 of
//! the payload's own canonical print, so a [`ResultCache::get`]
//! re-hashes what it read and never trusts bytes that were truncated,
//! bit-flipped, or copied under the wrong name: any mismatch (parse
//! failure, wrong `v`, key mismatch, hash mismatch) *quarantines* the
//! file — renames it to `*.quarantine.<pid>.<seq>` so the evidence
//! survives for inspection — and reports a miss, forcing a recompute
//! that overwrites the slot with a valid entry.
//!
//! # Crash and race safety
//!
//! [`ResultCache::put`] writes to a uniquely-named `*.tmp.<pid>.<seq>`
//! sibling, fsyncs, then renames over the final name — readers never
//! observe a partial entry. Writers racing on one key are benign:
//! payloads are deterministic functions of the key, so whichever rename
//! lands last installs the same bytes. A writer whose rename fails
//! because a sibling swept its tmp first just verifies the winner's
//! entry and reports success. After a successful install the writer
//! sweeps leftover tmps for that key, so injected-fault crashes
//! (`GNCG_FAULT_INJECT`, exercised via the `fault_point` inside `put`)
//! cannot accumulate debris as long as some writer eventually succeeds;
//! [`ResultCache::gc`] removes whatever debris remains.

use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use gncg_json::{canon, Value};

/// Process-wide directory override for [`ResultCache::from_env`], the
/// programmatic analogue of `GNCG_CACHE_DIR` (mirrors the
/// `netfault::set_probability` pattern: tests and embedders configure
/// the process without touching its environment).
static DIR_OVERRIDE: Mutex<Option<PathBuf>> = Mutex::new(None);

/// Install (`Some`) or clear (`None`) the process-wide cache directory.
/// While installed, [`ResultCache::from_env`] uses it and ignores the
/// environment knobs entirely.
pub fn set_process_cache_dir(dir: Option<PathBuf>) {
    *DIR_OVERRIDE.lock().unwrap() = dir;
}

/// A content-addressed cache rooted at one directory. Cheap to clone
/// conceptually (wrap in `Arc` to share across jobs).
#[derive(Debug)]
pub struct ResultCache {
    dir: PathBuf,
    seq: AtomicU64,
}

impl ResultCache {
    /// Open (creating if needed) a cache rooted at `dir`.
    pub fn at(dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(Self {
            dir,
            seq: AtomicU64::new(0),
        })
    }

    /// The cache the process asks for: the [`set_process_cache_dir`]
    /// override when installed, else `Some` iff `GNCG_CACHE_DIR` is set
    /// and `GNCG_CACHE` does not disable it. The env knobs are dynamic
    /// (re-read per call) via `gncg_config::env`. Returns `None` (cache
    /// off) if the directory cannot be created.
    pub fn from_env() -> Option<Self> {
        if let Some(dir) = DIR_OVERRIDE.lock().unwrap().clone() {
            return Self::at(dir).ok();
        }
        if !gncg_config::env::cache_on() {
            return None;
        }
        let dir = gncg_config::env::cache_dir()?;
        Self::at(dir).ok()
    }

    /// The cache a config snapshot asks for (`GncgConfig::cache_dir`).
    pub fn from_config(cfg: &gncg_config::GncgConfig) -> Option<Self> {
        let dir = cfg.cache_dir.as_ref()?;
        Self::at(dir).ok()
    }

    /// The cache's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn entry_path(&self, key: &str) -> PathBuf {
        self.dir.join(format!("{key}.json"))
    }

    fn unique_suffix(&self) -> String {
        format!(
            "{}.{}",
            std::process::id(),
            self.seq.fetch_add(1, Ordering::Relaxed)
        )
    }

    /// Look up `key`. Verifies the entry end-to-end (version, key
    /// field, payload hash) before returning its payload; anything
    /// invalid is quarantined and reported as a miss. Bumps the
    /// `cache_hits` / `cache_misses` trace counters.
    pub fn get(&self, key: &str) -> Option<Value> {
        let path = self.entry_path(key);
        let payload = fs::read_to_string(&path)
            .ok()
            .and_then(|text| Self::verify(key, &text));
        match payload {
            Some(p) => {
                gncg_trace::incr(gncg_trace::Counter::CacheHits);
                Some(p)
            }
            None => {
                if path.exists() {
                    // Present but invalid: quarantine the evidence so the
                    // slot is free for a valid recompute.
                    let q = self
                        .dir
                        .join(format!("{key}.json.quarantine.{}", self.unique_suffix()));
                    let _ = fs::rename(&path, &q);
                }
                gncg_trace::incr(gncg_trace::Counter::CacheMisses);
                None
            }
        }
    }

    /// Parse + verify one entry's text; `None` on any defect.
    fn verify(key: &str, text: &str) -> Option<Value> {
        let entry = gncg_json::parse(text).ok()?;
        if entry.get("v")?.as_u64()? != 1 {
            return None;
        }
        if entry.get("key")?.as_str()? != key {
            return None;
        }
        let payload = entry.get("payload")?;
        let recorded = entry.get("payload_sha")?.as_str()?;
        if canon::sha256_hex(canon::canonical_string(payload).as_bytes()) != recorded {
            return None;
        }
        Some(payload.clone())
    }

    /// Install `payload` under `key` atomically (tmp + fsync + rename).
    /// Racing writers converge on one valid entry; see the module docs.
    /// Contains a `fault_point` so `GNCG_FAULT_INJECT` soaks exercise
    /// the crash-mid-put path.
    pub fn put(&self, key: &str, payload: &Value) -> std::io::Result<()> {
        // Absorb injected crashes by retrying the whole attempt — the
        // same discipline the parallel chunk runners hold: a crashed
        // attempt left at most a uniquely-named tmp (swept on the next
        // success), never a partial entry, so a retry cannot double any
        // side effect. Without this a `GNCG_FAULT_INJECT` soak would
        // turn cache writes inside session jobs into job panics.
        loop {
            match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                self.put_attempt(key, payload)
            })) {
                Ok(result) => return result,
                Err(p) if gncg_parallel::fault::is_injected(&*p) => continue,
                Err(p) => std::panic::resume_unwind(p),
            }
        }
    }

    /// One crash-prone attempt: the `fault_point`s model a writer dying
    /// before the tmp exists and between fsync and rename.
    fn put_attempt(&self, key: &str, payload: &Value) -> std::io::Result<()> {
        gncg_parallel::fault::fault_point();
        let entry = gncg_json::object(vec![
            ("key", Value::String(key.to_string())),
            ("payload", payload.clone()),
            (
                "payload_sha",
                Value::String(canon::sha256_hex(
                    canon::canonical_string(payload).as_bytes(),
                )),
            ),
            ("v", Value::Number(1.0)),
        ]);
        let bytes = canon::canonical_string(&entry);
        let tmp = self
            .dir
            .join(format!("{key}.json.tmp.{}", self.unique_suffix()));
        let final_path = self.entry_path(key);
        let write = (|| -> std::io::Result<()> {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(bytes.as_bytes())?;
            f.sync_all()?;
            gncg_parallel::fault::fault_point();
            fs::rename(&tmp, &final_path)
        })();
        if write.is_err() {
            // A sibling writer may have swept our tmp after installing
            // its own (identical) entry — losing the race to an equal
            // payload is success, not failure.
            let valid = fs::read_to_string(&final_path)
                .ok()
                .and_then(|text| Self::verify(key, &text))
                .is_some();
            let _ = fs::remove_file(&tmp);
            if !valid {
                return write;
            }
        }
        self.sweep_tmps(key);
        Ok(())
    }

    /// Remove leftover `*.tmp.*` siblings of `key` (crashed writers).
    /// Best-effort; an in-flight writer whose tmp we sweep falls back to
    /// verifying the installed entry.
    fn sweep_tmps(&self, key: &str) {
        let prefix = format!("{key}.json.tmp.");
        let Ok(entries) = fs::read_dir(&self.dir) else {
            return;
        };
        for e in entries.flatten() {
            if e.file_name().to_string_lossy().starts_with(&prefix) {
                let _ = fs::remove_file(e.path());
            }
        }
    }

    /// Garbage-collect debris: orphaned `*.tmp.*` files (crashed
    /// writers) and `*.quarantine.*` files (inspected-or-not corrupt
    /// entries). Valid entries are never touched. Returns the number of
    /// files removed.
    pub fn gc(&self) -> std::io::Result<usize> {
        let mut removed = 0;
        for e in fs::read_dir(&self.dir)?.flatten() {
            let name = e.file_name();
            let name = name.to_string_lossy();
            if (name.contains(".json.tmp.") || name.contains(".json.quarantine."))
                && fs::remove_file(e.path()).is_ok()
            {
                removed += 1;
            }
        }
        Ok(removed)
    }

    /// Number of valid-named entries (`*.json`, excluding debris) —
    /// for `gncg sweep gc` reporting and tests.
    pub fn entry_count(&self) -> std::io::Result<usize> {
        let mut n = 0;
        for e in fs::read_dir(&self.dir)?.flatten() {
            let name = e.file_name();
            let name = name.to_string_lossy();
            if name.ends_with(".json") {
                n += 1;
            }
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gncg_json::object;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("gncg_cache_test_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn payload() -> Value {
        object(vec![
            ("beta", Value::Number(1.25)),
            ("n", Value::Number(8.0)),
        ])
    }

    #[test]
    fn put_get_roundtrip() {
        let cache = ResultCache::at(tmpdir("roundtrip")).unwrap();
        let key = canon::content_key(&payload());
        assert!(cache.get(&key).is_none());
        cache.put(&key, &payload()).unwrap();
        let got = cache.get(&key).expect("hit after put");
        assert_eq!(
            canon::canonical_string(&got),
            canon::canonical_string(&payload())
        );
        // No tmp debris after a successful put.
        for e in fs::read_dir(cache.dir()).unwrap().flatten() {
            assert!(
                !e.file_name().to_string_lossy().contains(".tmp."),
                "tmp survivor: {:?}",
                e.file_name()
            );
        }
    }

    #[test]
    fn corrupt_entry_is_quarantined_and_recomputed() {
        let cache = ResultCache::at(tmpdir("corrupt")).unwrap();
        let key = canon::content_key(&payload());
        cache.put(&key, &payload()).unwrap();

        // Flip a payload byte without updating the recorded hash.
        let path = cache.dir().join(format!("{key}.json"));
        let text = fs::read_to_string(&path).unwrap().replace("1.25", "9.25");
        fs::write(&path, text).unwrap();

        assert!(cache.get(&key).is_none(), "tampered entry must miss");
        assert!(!path.exists(), "tampered entry must be quarantined away");
        let quarantined = fs::read_dir(cache.dir())
            .unwrap()
            .flatten()
            .filter(|e| e.file_name().to_string_lossy().contains(".quarantine."))
            .count();
        assert_eq!(quarantined, 1);

        // Recompute fills the slot again.
        cache.put(&key, &payload()).unwrap();
        assert!(cache.get(&key).is_some());
        assert_eq!(cache.gc().unwrap(), 1); // removes the quarantine file
        assert!(cache.get(&key).is_some(), "gc never touches valid entries");
    }

    #[test]
    fn truncated_and_wrong_key_entries_miss() {
        let cache = ResultCache::at(tmpdir("trunc")).unwrap();
        let key = canon::content_key(&payload());
        cache.put(&key, &payload()).unwrap();

        // Truncation.
        let path = cache.dir().join(format!("{key}.json"));
        let text = fs::read_to_string(&path).unwrap();
        fs::write(&path, &text[..text.len() / 2]).unwrap();
        assert!(cache.get(&key).is_none());

        // A valid entry copied under the wrong name (content address
        // mismatch) must not be trusted either.
        cache.put(&key, &payload()).unwrap();
        let other = "0".repeat(64);
        fs::copy(
            cache.dir().join(format!("{key}.json")),
            cache.dir().join(format!("{other}.json")),
        )
        .unwrap();
        assert!(cache.get(&other).is_none());
    }

    #[test]
    fn from_env_respects_kill_switch() {
        // parse-rule level (the env accessors themselves are covered by
        // gncg-config's dynamic-read tests; mutating the process env in
        // a parallel test harness would race other tests).
        assert!(gncg_config::parse::cache_on(None));
        assert!(!gncg_config::parse::cache_on(Some("0")));
    }
}
