//! Zero-cost-when-off observability for the gncg solver stack.
//!
//! The layer has three parts:
//!
//! - **Work counters** ([`Counter`]): thread-local `u64` tallies of the
//!   units of algorithmic work the stack performs (Dijkstra heap pops and
//!   edge relaxations, exact best-response strategy evaluations, distance
//!   matrix row invalidations) and of the execution substrate's activity
//!   (chunk claims, budget polls, injected faults and their retries, pool
//!   jobs). Each worker accumulates locally and merges into process-wide
//!   atomics at scope exit (see [`worker_guard`]); because the algorithmic
//!   counters are sums of per-item deterministic contributions and `u64`
//!   addition is order-independent, their totals are bit-identical across
//!   thread counts and across fault-injection retries.
//! - **Spans** ([`span`]): coarse monotonic-clock timers around the big
//!   phases (APSP, best response, dynamics, certification). A span is one
//!   `Instant::now()` pair plus one mutex lock at drop — cheap because
//!   spans wrap work that takes microseconds to seconds, never per-item.
//! - **Chunk histogram**: a log₂-bucketed duration histogram of parallel
//!   chunk execution times, the pool-utilization signal.
//!
//! Everything is gated on `GNCG_TRACE=1`. When the gate is off (the
//! default) every instrumentation site reduces to one relaxed atomic load
//! (counters, spans) or is bypassed entirely (clock reads); the hot
//! Dijkstra kernels count into local registers unconditionally and make a
//! single gated call per kernel invocation, so the off-path adds no
//! per-edge work at all. The `trace_overhead` bench in `gncg-bench`
//! verifies the off-path is within noise of an uninstrumented build.
//!
//! Toggling the gate while parallel work is in flight has no data races
//! but may lose or split counts; [`set_enabled`] exists for tests and
//! single-threaded tools, production use is env-var-at-startup only.

use gncg_json::{object, ToJson, Value};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Mutex;
use std::time::Instant;

// ---------------------------------------------------------------------------
// gate

const STATE_UNSET: u8 = 0;
const STATE_OFF: u8 = 1;
const STATE_ON: u8 = 2;
static STATE: AtomicU8 = AtomicU8::new(STATE_UNSET);

/// Is tracing enabled? First call reads `GNCG_TRACE` (`"1"`/`"true"` ⇒
/// on); the answer is cached, so this is a single relaxed atomic load on
/// every subsequent call.
#[inline]
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        STATE_ON => true,
        STATE_OFF => false,
        _ => init_from_env(),
    }
}

#[cold]
fn init_from_env() -> bool {
    let on = gncg_config::env::trace();
    STATE.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Relaxed);
    on
}

/// Override the gate (tests and tools). See the crate docs for the
/// mid-flight toggling caveat.
pub fn set_enabled(on: bool) {
    STATE.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// counters

/// The tracked work counters. The ones listed in
/// [`DETERMINISTIC_COUNTERS`] are *deterministic*: their totals depend
/// only on the workload, not on thread count, scheduling, or fault
/// injection (`tools/perf_gate.sh` compares them exactly). The rest
/// describe substrate activity and may legitimately vary run-to-run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    /// Successful edge relaxations (`nd < dist[v]`) in any Dijkstra kernel.
    DijkstraRelaxations = 0,
    /// Binary-heap pops in any Dijkstra kernel (including stale entries).
    DijkstraHeapPops,
    /// Exact strategy evaluations (`ResponseEvaluator::cost_with` calls).
    BestResponseEvals,
    /// Previously-valid distance-matrix rows invalidated by an accepted move.
    RowInvalidations,
    /// Chunks claimed from the shared counter by scoped-loop workers.
    ChunkClaims,
    /// Budget-exhaustion polls (only counted when a budget is installed).
    BudgetPolls,
    /// Faults fired by the `GNCG_FAULT_INJECT` injector.
    FaultsInjected,
    /// Chunk retries caused by injected faults.
    FaultRetries,
    /// Jobs executed by persistent `ThreadPool` workers.
    PoolJobs,
    /// Candidate moves/strategies discarded by the geometric pruning
    /// layer without a cost evaluation (`GNCG_PRUNE`, default on). The
    /// prune decision is a pure function of the candidate and fixed
    /// per-agent bounds, so the total is schedule-invariant.
    MovesPruned,
    /// Candidate moves/strategies that survived pruning and were cost
    /// evaluated by the pruned engine. `MovesPruned + MovesEvaluated`
    /// equals the candidate count the unpruned engine would evaluate.
    MovesEvaluated,
    /// Jobs admitted into a `gncg-service` session queue.
    ServiceEnqueued,
    /// Jobs dequeued by a `gncg-service` runner (started executing).
    ServiceDequeued,
    /// Jobs rejected at admission (queue full or session shutting down).
    ServiceRejected,
    /// Jobs accepted by the `gncg-serve` wire layer and enqueued into the
    /// backing session (idempotent replays of an already-known key do not
    /// count twice).
    ServeEnqueued,
    /// Wire-layer submissions rejected before reaching the session
    /// (per-client quota exceeded, server draining, or malformed request).
    ServeRejected,
    /// Frames successfully decoded off client connections.
    ServeFramesRx,
    /// Frames successfully written to client connections.
    ServeFramesTx,
    /// Client-side retries (reconnects + resubmissions) performed by
    /// `ServeClient` after transport errors or injected network faults.
    ServeRetries,
    /// Move targets produced by grid-hash candidate generation and handed
    /// to a move engine for consideration. A pure function of the
    /// instance (cell membership + the sound exclusion radius), so the
    /// total is schedule-invariant.
    CandidatesGenerated,
    /// Move targets excluded by the grid's sound radius bound without
    /// ever reaching a move engine — each one provably unable to beat the
    /// agent's current cost (see `gncg-game`'s `approx` module docs).
    /// Deterministic for the same reason as [`Counter::CandidatesGenerated`].
    CandidatesSkipped,
    /// Content-addressed result-cache lookups that found a valid entry.
    /// NOT deterministic: hit counts depend on what earlier runs left in
    /// `GNCG_CACHE_DIR`, so this stays out of
    /// [`DETERMINISTIC_COUNTERS`].
    CacheHits,
    /// Content-addressed result-cache lookups that missed (no entry, or
    /// a corrupt entry that was quarantined). Nondeterministic for the
    /// same reason as [`Counter::CacheHits`].
    CacheMisses,
}

/// Number of counters in [`Counter`].
pub const NUM_COUNTERS: usize = 23;

/// JSON field names, indexed by `Counter as usize`.
pub const COUNTER_NAMES: [&str; NUM_COUNTERS] = [
    "dijkstra_relaxations",
    "dijkstra_heap_pops",
    "best_response_evals",
    "row_invalidations",
    "chunk_claims",
    "budget_polls",
    "faults_injected",
    "fault_retries",
    "pool_jobs",
    "moves_pruned",
    "moves_evaluated",
    "service_enqueued",
    "service_dequeued",
    "service_rejected",
    "serve_enqueued",
    "serve_rejected",
    "serve_frames_rx",
    "serve_frames_tx",
    "serve_retries",
    "candidates_generated",
    "candidates_skipped",
    "cache_hits",
    "cache_misses",
];

/// The thread-count- and schedule-invariant subset of [`COUNTER_NAMES`];
/// the perf gate compares exactly these for bit-identity.
pub const DETERMINISTIC_COUNTERS: [Counter; 8] = [
    Counter::DijkstraRelaxations,
    Counter::DijkstraHeapPops,
    Counter::BestResponseEvals,
    Counter::RowInvalidations,
    Counter::MovesPruned,
    Counter::MovesEvaluated,
    Counter::CandidatesGenerated,
    Counter::CandidatesSkipped,
];

thread_local! {
    static LOCAL: [Cell<u64>; NUM_COUNTERS] = const { [const { Cell::new(0) }; NUM_COUNTERS] };
}

static GLOBAL: [AtomicU64; NUM_COUNTERS] = [const { AtomicU64::new(0) }; NUM_COUNTERS];

/// Add `n` to a counter (no-op when tracing is off or `n == 0`).
#[inline]
pub fn add(counter: Counter, n: u64) {
    if enabled() && n > 0 {
        add_unchecked(counter, n);
    }
}

/// Add 1 to a counter (no-op when tracing is off).
#[inline]
pub fn incr(counter: Counter) {
    if enabled() {
        add_unchecked(counter, 1);
    }
}

/// Record one Dijkstra kernel invocation's batched tallies. The kernels
/// count into local registers unconditionally and call this once per
/// invocation, so the gate is checked once per kernel, not per edge.
#[inline]
pub fn record_dijkstra(heap_pops: u64, relaxations: u64) {
    if enabled() {
        add_unchecked(Counter::DijkstraHeapPops, heap_pops);
        add_unchecked(Counter::DijkstraRelaxations, relaxations);
    }
}

#[inline]
fn add_unchecked(counter: Counter, n: u64) {
    LOCAL.with(|l| {
        let cell = &l[counter as usize];
        cell.set(cell.get().wrapping_add(n));
    });
}

/// Merge this thread's local tallies into the process-wide totals and
/// zero the locals. Workers do this at scope exit (via [`worker_guard`])
/// or per pool job; [`snapshot`] does it for the calling thread.
pub fn flush_thread() {
    if !enabled() {
        return;
    }
    LOCAL.with(|l| {
        for (cell, global) in l.iter().zip(GLOBAL.iter()) {
            let v = cell.replace(0);
            if v > 0 {
                global.fetch_add(v, Ordering::Relaxed);
            }
        }
    });
}

/// RAII guard that flushes the current thread's counters when dropped.
/// Every `gncg-parallel` worker holds one for the duration of its scope.
#[must_use]
pub struct WorkerGuard {
    _priv: (),
}

/// Create a [`WorkerGuard`] for the current thread.
pub fn worker_guard() -> WorkerGuard {
    WorkerGuard { _priv: () }
}

impl Drop for WorkerGuard {
    fn drop(&mut self) {
        flush_thread();
    }
}

// ---------------------------------------------------------------------------
// spans

struct SpanTotal {
    name: &'static str,
    count: u64,
    total_ns: u64,
}

static SPANS: Mutex<Vec<SpanTotal>> = Mutex::new(Vec::new());

/// An in-flight span; records its elapsed time under `name` when dropped.
#[must_use]
pub struct Span {
    name: &'static str,
    start: Option<Instant>,
}

/// Open a span. When tracing is off this takes no clock reading and the
/// drop is a no-op.
#[inline]
pub fn span(name: &'static str) -> Span {
    Span {
        name,
        start: enabled().then(Instant::now),
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            let mut spans = SPANS.lock().unwrap_or_else(|p| p.into_inner());
            match spans.iter_mut().find(|s| s.name == self.name) {
                Some(s) => {
                    s.count += 1;
                    s.total_ns = s.total_ns.saturating_add(ns);
                }
                None => spans.push(SpanTotal {
                    name: self.name,
                    count: 1,
                    total_ns: ns,
                }),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// chunk-duration histogram

/// Number of log₂ buckets in the chunk-duration histogram. Bucket `k`
/// counts chunks whose wall time `t` satisfies `⌊log₂ t_ns⌋ = k`, with
/// the last bucket absorbing everything ≥ 2³¹ ns (~2.1 s).
pub const HIST_BUCKETS: usize = 32;

static CHUNK_HIST: [AtomicU64; HIST_BUCKETS] = [const { AtomicU64::new(0) }; HIST_BUCKETS];

/// Record one parallel chunk's wall time. Callers gate the clock reads
/// on [`enabled`] themselves; this only buckets and increments.
pub fn record_chunk_ns(ns: u64) {
    let bucket = if ns <= 1 {
        0
    } else {
        (63 - ns.leading_zeros() as usize).min(HIST_BUCKETS - 1)
    };
    CHUNK_HIST[bucket].fetch_add(1, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// snapshot

/// Per-span aggregate in a [`TraceSnapshot`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanStat {
    pub name: &'static str,
    pub count: u64,
    pub total_ns: u64,
}

/// A point-in-time copy of all trace state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceSnapshot {
    /// Counter totals, indexed by `Counter as usize`.
    pub counters: [u64; NUM_COUNTERS],
    /// Span aggregates, sorted by name.
    pub spans: Vec<SpanStat>,
    /// Chunk-duration histogram (log₂-ns buckets).
    pub chunk_hist: [u64; HIST_BUCKETS],
}

impl TraceSnapshot {
    /// Total for one counter.
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters[c as usize]
    }

    /// Per-counter difference `self − earlier` (saturating), spans and
    /// histogram dropped. For before/after measurements in tests.
    pub fn counters_since(&self, earlier: &TraceSnapshot) -> [u64; NUM_COUNTERS] {
        let mut out = [0u64; NUM_COUNTERS];
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = self.counters[i].saturating_sub(earlier.counters[i]);
        }
        out
    }
}

impl ToJson for TraceSnapshot {
    fn to_json(&self) -> Value {
        let counters = object(
            COUNTER_NAMES
                .iter()
                .zip(self.counters.iter())
                .map(|(name, &v)| (*name, Value::Number(v as f64)))
                .collect(),
        );
        let spans = Value::Array(
            self.spans
                .iter()
                .map(|s| {
                    object(vec![
                        ("name", Value::String(s.name.to_string())),
                        ("count", Value::Number(s.count as f64)),
                        ("total_ns", Value::Number(s.total_ns as f64)),
                    ])
                })
                .collect(),
        );
        let hist = Value::Array(
            self.chunk_hist
                .iter()
                .enumerate()
                .filter(|(_, &c)| c > 0)
                .map(|(k, &c)| {
                    object(vec![
                        ("log2_ns", Value::Number(k as f64)),
                        ("count", Value::Number(c as f64)),
                    ])
                })
                .collect(),
        );
        object(vec![
            ("counters", counters),
            ("spans", spans),
            ("chunk_ns_hist", hist),
        ])
    }
}

/// Flush the calling thread, then copy the process-wide totals. Complete
/// only once all parallel regions of interest have exited (scoped loops
/// flush at scope exit, pool workers per job).
pub fn snapshot() -> TraceSnapshot {
    flush_thread();
    let mut counters = [0u64; NUM_COUNTERS];
    for (out, global) in counters.iter_mut().zip(GLOBAL.iter()) {
        *out = global.load(Ordering::Relaxed);
    }
    let mut spans: Vec<SpanStat> = SPANS
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .iter()
        .map(|s| SpanStat {
            name: s.name,
            count: s.count,
            total_ns: s.total_ns,
        })
        .collect();
    spans.sort_by_key(|s| s.name);
    let mut chunk_hist = [0u64; HIST_BUCKETS];
    for (out, bucket) in chunk_hist.iter_mut().zip(CHUNK_HIST.iter()) {
        *out = bucket.load(Ordering::Relaxed);
    }
    TraceSnapshot {
        counters,
        spans,
        chunk_hist,
    }
}

/// Zero all process-wide totals, spans, the histogram, and the calling
/// thread's locals. Call only between parallel regions (other threads'
/// unflushed locals are not touched; scoped workers have none between
/// regions and pool workers flush per job).
pub fn reset() {
    LOCAL.with(|l| {
        for cell in l.iter() {
            cell.set(0);
        }
    });
    for global in GLOBAL.iter() {
        global.store(0, Ordering::Relaxed);
    }
    SPANS.lock().unwrap_or_else(|p| p.into_inner()).clear();
    for bucket in CHUNK_HIST.iter() {
        bucket.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // trace state is process-global; serialize the tests that touch it
    static LOCK: Mutex<()> = Mutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        LOCK.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn counters_accumulate_and_flush() {
        let _g = locked();
        set_enabled(true);
        reset();
        add(Counter::DijkstraRelaxations, 5);
        incr(Counter::BestResponseEvals);
        record_dijkstra(7, 3);
        let s = snapshot();
        assert_eq!(s.counter(Counter::DijkstraRelaxations), 8);
        assert_eq!(s.counter(Counter::DijkstraHeapPops), 7);
        assert_eq!(s.counter(Counter::BestResponseEvals), 1);
        assert_eq!(s.counter(Counter::ChunkClaims), 0);
        set_enabled(false);
    }

    #[test]
    fn disabled_records_nothing() {
        let _g = locked();
        set_enabled(true);
        reset();
        set_enabled(false);
        add(Counter::DijkstraRelaxations, 5);
        record_dijkstra(2, 2);
        {
            let _s = span("noop");
        }
        set_enabled(true);
        let s = snapshot();
        assert_eq!(s.counters, [0u64; NUM_COUNTERS]);
        assert!(s.spans.is_empty());
        set_enabled(false);
    }

    #[test]
    fn cross_thread_merge_is_a_sum() {
        let _g = locked();
        set_enabled(true);
        reset();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    let guard = worker_guard();
                    for _ in 0..100 {
                        incr(Counter::BestResponseEvals);
                    }
                    drop(guard);
                });
            }
        });
        let s = snapshot();
        assert_eq!(s.counter(Counter::BestResponseEvals), 400);
        set_enabled(false);
    }

    #[test]
    fn spans_record_named_totals() {
        let _g = locked();
        set_enabled(true);
        reset();
        {
            let _s = span("unit_test_span");
            std::hint::black_box(0u64);
        }
        {
            let _s = span("unit_test_span");
        }
        let s = snapshot();
        let stat = s.spans.iter().find(|s| s.name == "unit_test_span").unwrap();
        assert_eq!(stat.count, 2);
        set_enabled(false);
    }

    #[test]
    fn histogram_buckets_by_log2() {
        let _g = locked();
        set_enabled(true);
        reset();
        record_chunk_ns(1); // bucket 0
        record_chunk_ns(1024); // bucket 10
        record_chunk_ns(1100); // bucket 10
        record_chunk_ns(u64::MAX); // clamped to last bucket
        let s = snapshot();
        assert_eq!(s.chunk_hist[0], 1);
        assert_eq!(s.chunk_hist[10], 2);
        assert_eq!(s.chunk_hist[HIST_BUCKETS - 1], 1);
        set_enabled(false);
    }

    #[test]
    fn snapshot_json_shape() {
        let _g = locked();
        set_enabled(true);
        reset();
        add(Counter::ChunkClaims, 3);
        let v = snapshot().to_json();
        let text = gncg_json::to_string(&v);
        assert!(text.contains("\"chunk_claims\":3"));
        assert!(text.contains("\"spans\":[]"));
        set_enabled(false);
    }
}
